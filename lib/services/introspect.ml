open Exsec_core
open Exsec_extsys
module Metrics = Exsec_obs.Metrics
module Trace = Exsec_obs.Trace

let mount_point = Path.of_string "/svc/introspect"
let audit_tail_path = Path.of_string "/svc/introspect/audit_tail"
let metrics_path = Path.of_string "/svc/introspect/metrics"
let trace_tail_path = Path.of_string "/svc/introspect/trace_tail"

let extensions_impl kernel _ctx _args =
  Ok (Value.list (List.map Value.str (Kernel.loaded_extensions kernel)))

let threads_impl kernel _ctx _args =
  let live = Sched.alive (Kernel.sched kernel) in
  Ok
    (Value.list
       (List.map
          (fun thread -> Value.pair (Value.int (Thread.id thread)) (Value.str (Thread.name thread)))
          live))

let audit_totals_impl kernel _ctx _args =
  let audit = Reference_monitor.audit (Kernel.monitor kernel) in
  Ok (Value.pair (Value.int (Audit.granted_total audit)) (Value.int (Audit.denied_total audit)))

let audit_tail_impl kernel _ctx args =
  (* Negative counts clamp to 0 (empty tail) rather than leaking the
     whole log, and [Audit.tail] gathers only the requested window per
     shard instead of materializing and double-traversing the full
     merged list as the first version did. *)
  let count =
    match args with
    | [ Value.Int n ] -> Stdlib.max 0 n
    | _ -> 16
  in
  let audit = Reference_monitor.audit (Kernel.monitor kernel) in
  let tail = Audit.tail audit ~count in
  Ok (Value.list (List.map (fun e -> Value.str (Format.asprintf "%a" Audit.pp_event e)) tail))

let namespace_size_impl kernel _ctx _args =
  Ok (Value.int (Namespace.size (Kernel.namespace kernel)))

let handle_stats_impl kernel _ctx _args =
  let stats = Kernel.handle_stats kernel in
  let counter name value = Value.pair (Value.str name) (Value.int value) in
  Ok
    (Value.list
       [
         counter "capacity" stats.Handle.hs_capacity;
         counter "live" stats.Handle.hs_live;
         counter "mints" stats.Handle.hs_mints;
         counter "closes" stats.Handle.hs_closes;
       ])

let handles_impl kernel _ctx _args =
  (* One line per live handle: which slot pins which path, minted for
     which extension, bound to which principal.  Classified like the
     audit tail — the table describes everyone's access. *)
  Ok
    (Value.list
       (List.map
          (fun (slot, path, caller, principal) ->
            Value.str (Printf.sprintf "#%d %s caller=%s principal=%s" slot path caller principal))
          (Kernel.live_handles kernel)))

let cache_stats_impl kernel _ctx _args =
  match Kernel.cache_stats kernel with
  | None -> Ok (Value.list [])
  | Some stats ->
    let counter name value = Value.pair (Value.str name) (Value.int value) in
    Ok
      (Value.list
         [
           counter "hits" stats.Decision_cache.hits;
           counter "misses" stats.Decision_cache.misses;
           counter "evictions" stats.Decision_cache.evictions;
           counter "invalidations" stats.Decision_cache.invalidations;
           counter "size" stats.Decision_cache.size;
           counter "capacity" stats.Decision_cache.capacity;
           counter "shards" stats.Decision_cache.shards;
         ])

let metrics_impl _kernel _ctx _args =
  (* The whole registry as (name, value) pairs, in the cache_stats
     shape: counters and gauges verbatim, each histogram flattened to
     <name>.count / .sum_ns / .p50_ns / .p95_ns / .p99_ns (percentiles
     rounded to integer nanoseconds — Value has no float). *)
  let snap = Metrics.snapshot () in
  let pair name value = Value.pair (Value.str name) (Value.int value) in
  let counters = List.map (fun (name, value) -> pair name value) snap.Metrics.counters in
  let gauges = List.map (fun (name, value) -> pair name value) snap.Metrics.gauges in
  let histograms =
    List.concat_map
      (fun (name, summary) ->
        [
          pair (name ^ ".count") summary.Metrics.hs_count;
          pair (name ^ ".sum_ns") summary.Metrics.hs_sum_ns;
          pair (name ^ ".p50_ns") (int_of_float summary.Metrics.p50_ns);
          pair (name ^ ".p95_ns") (int_of_float summary.Metrics.p95_ns);
          pair (name ^ ".p99_ns") (int_of_float summary.Metrics.p99_ns);
        ])
      snap.Metrics.histograms
  in
  Ok
    (Value.list
       (pair "enabled" (if snap.Metrics.snap_enabled then 1 else 0)
       :: (counters @ gauges @ histograms)))

let trace_tail_impl _kernel _ctx args =
  let count =
    match args with
    | [ Value.Int n ] -> Stdlib.max 0 n
    | _ -> 16
  in
  let spans = Trace.tail ~count () in
  Ok (Value.list (List.map (fun span -> Value.str (Trace.span_to_line span)) spans))

let install kernel ~subject =
  let owner = Subject.principal subject in
  let open_meta () = Kernel.default_meta kernel ~owner () in
  (* Reading the audit trail exposes everyone's behaviour: top class,
     owner-only DAC. *)
  let audit_meta () =
    Meta.make ~owner
      ~acl:
        (Acl.of_entries
           [ Acl.allow_all (Acl.Individual owner); Acl.allow Acl.Everyone [ Access_mode.List ] ])
      (Security_class.top (Kernel.hierarchy kernel) (Kernel.universe kernel))
  in
  let ( let* ) = Result.bind in
  let* () = Kernel.add_dir kernel ~subject mount_point ~meta:(open_meta ()) in
  let install name arity meta impl =
    Kernel.install_proc kernel ~subject (Path.child mount_point name) ~meta
      (Service.proc name arity impl)
  in
  let* () = install "extensions" 0 (open_meta ()) (extensions_impl kernel) in
  let* () = install "threads" 0 (open_meta ()) (threads_impl kernel) in
  let* () = install "audit_totals" 0 (open_meta ()) (audit_totals_impl kernel) in
  let* () = install "audit_tail" (-1) (audit_meta ()) (audit_tail_impl kernel) in
  let* () = install "namespace_size" 0 (open_meta ()) (namespace_size_impl kernel) in
  let* () = install "cache_stats" 0 (open_meta ()) (cache_stats_impl kernel) in
  let* () = install "handle_stats" 0 (open_meta ()) (handle_stats_impl kernel) in
  let* () = install "handles" 0 (audit_meta ()) (handles_impl kernel) in
  let* () = install "metrics" 0 (open_meta ()) (metrics_impl kernel) in
  (* Traces carry paths and subjects of everyone's calls — classified
     like the audit tail. *)
  install "trace_tail" (-1) (audit_meta ()) (trace_tail_impl kernel)
