open Exsec_core
open Exsec_extsys

(* The entry list is shared by every domain that resolves
   [/svc/log/data], so all mutation and observation of it funnels
   through the per-log mutex — the same bug class PR 5 fixed in
   Netstack (a bare mutable list torn by concurrent appends).  The
   length rides alongside under the same lock so [size] is O(1)
   instead of a walk of a list another domain may be swapping. *)
type log_state = {
  lock : Mutex.t;
  mutable entries : string list;  (* newest first *)
  mutable length : int;
}

type Kernel.entry += Log_data of log_state

type t = {
  kernel : Kernel.t;
  state : log_state;
}

let make_state () = { lock = Mutex.create (); entries = []; length = 0 }

let locked state f = Mutex.protect state.lock (fun () -> f state)

let state_append state line =
  locked state (fun s ->
      s.entries <- line :: s.entries;
      s.length <- s.length + 1)

let state_entries state = List.rev (locked state (fun s -> s.entries))
let state_size state = locked state (fun s -> s.length)

let state_truncate state =
  locked state (fun s ->
      s.entries <- [];
      s.length <- 0)

let state_replace state lines =
  locked state (fun s ->
      s.entries <- List.rev lines;
      s.length <- List.length lines)

let mount_point = Path.of_string "/svc/log"
let data_path = Path.of_string "/svc/log/data"

let install kernel ~subject ?klass () =
  let owner = Subject.principal subject in
  let klass =
    match klass with
    | Some klass -> klass
    | None -> Security_class.top (Kernel.hierarchy kernel) (Kernel.universe kernel)
  in
  let bottom = Security_class.bottom (Kernel.hierarchy kernel) (Kernel.universe kernel) in
  let dir_meta =
    Meta.make ~owner
      ~acl:
        (Acl.of_entries
           [ Acl.allow_all (Acl.Individual owner); Acl.allow Acl.Everyone [ Access_mode.List ] ])
      bottom
  in
  let data_meta =
    Meta.make ~owner
      ~acl:
        (Acl.of_entries
           [
             Acl.allow_all (Acl.Individual owner);
             Acl.allow Acl.Everyone
               [ Access_mode.List; Access_mode.Read; Access_mode.Write_append ];
           ])
      klass
  in
  let state = make_state () in
  let ( let* ) = Result.bind in
  let* () = Kernel.add_dir kernel ~subject mount_point ~meta:dir_meta in
  let* () = Kernel.install_entry kernel ~subject data_path ~meta:data_meta (Log_data state) in
  Ok { kernel; state }

let checked_data log ~subject ~mode =
  match Resolver.resolve (Kernel.resolver log.kernel) ~subject ~mode data_path with
  | Error denial -> Error (Kernel.error_of_denial denial)
  | Ok node -> (
    match Namespace.payload node with
    | Some (Log_data state) -> Ok state
    | Some _ | None -> Error (Service.Unresolved "/svc/log/data: not a log"))

let append log ~subject line =
  Result.map
    (fun state -> state_append state line)
    (checked_data log ~subject ~mode:Access_mode.Write_append)

let entries log ~subject =
  Result.map state_entries (checked_data log ~subject ~mode:Access_mode.Read)

let truncate log ~subject =
  Result.map state_truncate (checked_data log ~subject ~mode:Access_mode.Write)

let size log = state_size log.state

let append_cache_stats log ~subject =
  let line =
    match Kernel.cache_stats log.kernel with
    | None -> "monitor cache: disabled"
    | Some stats ->
      Format.asprintf "monitor cache: %a" Decision_cache.pp_stats stats
  in
  append log ~subject line

let append_metrics log ~subject =
  (* One checked append per structured line (the "metrics ..."
     counter/gauge line plus one "latency <name> ..." line per
     histogram): each write is an ordinary audited Write_append, and a
     denial stops the export where it stood. *)
  let lines = Exsec_obs.Metrics.(snapshot_lines (snapshot ())) in
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok () -> append log ~subject line)
    (Ok ()) lines
