(** Kernel introspection: system state published as protected objects
    (a procfs for the extensible system).

    Everything an operator needs to see — loaded extensions, live
    threads, audit counters, the mount layout — appears under
    [/svc/introspect] as ordinary callable procedures, so visibility
    itself is subject to the one protection mechanism: the
    status procedures are world-callable, the audit-reading ones are
    classified at the top of the lattice (reading the audit trail
    reveals every subject's behaviour, the most sensitive information
    in the system).

    Procedures:
    - [extensions : () -> list str]       loaded extension names
    - [threads : () -> list (pair int str)]  live thread ids and names
    - [audit_totals : () -> (granted, denied)]   counters only
    - [audit_tail : int -> list str]      rendered recent events (classified)
    - [namespace_size : () -> int]        node count
    - [cache_stats : () -> list (pair str int)]  decision-cache counters
      (hits, misses, evictions, invalidations, size, capacity; the
      empty list when the monitor runs uncached)
    - [handle_stats : () -> list (pair str int)]  capability-handle
      table counters (capacity, live, mints, closes)
    - [handles : () -> list str]          one line per live handle —
      slot, pinned path, owning caller, bound principal (classified
      like [audit_tail]: the table describes everyone's access)
    - [metrics : () -> list (pair str int)]  the whole [Exsec_obs]
      registry: counters and gauges verbatim, histograms flattened to
      [<name>.count]/[.sum_ns]/[.p50_ns]/[.p95_ns]/[.p99_ns], plus an
      [enabled] flag pair first
    - [trace_tail : int -> list str]      rendered recent call spans
      (classified like [audit_tail]; count clamped at 0) *)

open Exsec_core
open Exsec_extsys

val install : Kernel.t -> subject:Subject.t -> (unit, Service.error) result
val mount_point : Path.t
val audit_tail_path : Path.t
val metrics_path : Path.t
val trace_tail_path : Path.t
