(** Network-buffer (mbuf) management: the base-system service the
    paper's example file-system extension builds on (section 1.1:
    "the extension that implements the new file system uses existing
    services (such as mbuf management) and builds on them").

    A pool hands out fixed-capacity buffers by integer handle.  The
    service is published under [/svc/mbuf] with procedures:

    - [alloc : () -> int]                fresh handle
    - [free : int -> ()]                 return the buffer
    - [write : int * blob -> int]        append whole payload, or overflow
    - [read : int -> blob]               current contents
    - [reset : int -> ()]                empty the buffer
    - [stats : () -> (allocated, live, capacity)] *)

open Exsec_core
open Exsec_extsys

type t

val create : ?buffer_capacity:int -> ?pool_limit:int -> unit -> t
(** [buffer_capacity] (default 2048) bytes per buffer; [pool_limit]
    (default 4096) simultaneous live buffers. *)

(** {1 Direct API} *)

type error =
  | Bad_handle of int
  | Pool_exhausted
  | Overflow of { capacity : int; requested : int }

val alloc : t -> (int, error) result
val free : t -> int -> (unit, error) result
val write : t -> int -> bytes -> (int, error) result
(** All-or-nothing append: when the whole payload fits in the
    buffer's remaining room it is appended and its full length
    returned; otherwise [Error (Overflow _)] and the buffer is left
    untouched.  A successful write never returns fewer bytes than the
    payload carries — there are no silent short writes. *)

val read : t -> int -> (bytes, error) result
val reset : t -> int -> (unit, error) result
val live : t -> int
val allocated_total : t -> int

(** {1 Service publication} *)

val install :
  t -> Kernel.t -> subject:Subject.t -> (unit, Service.error) result
(** Publish the pool at [/svc/mbuf] (owner: the subject's principal;
    callable by everyone). *)

val mount_point : Path.t
