open Exsec_core
open Exsec_extsys

(* A file's contents are shared by every domain that resolves it —
   the serve front end's worker domains mutate files concurrently —
   so reads and writes funnel through the per-file mutex, the same
   bug class fixed in Netstack (PR 5) and Syslog (this PR): a bare
   read-modify-write append from two domains silently loses data. *)
type file = {
  lock : Mutex.t;
  mutable data : string;
}

type Kernel.entry += File of file

let file_make data = { lock = Mutex.create (); data }
let file_contents file = Mutex.protect file.lock (fun () -> file.data)
let file_replace file contents = Mutex.protect file.lock (fun () -> file.data <- contents)

let file_append file contents =
  Mutex.protect file.lock (fun () -> file.data <- file.data ^ contents)

type t = {
  kernel : Kernel.t;
  mount : Path.t;
}

let kernel fs = fs.kernel
let mount_path fs = fs.mount
let abs fs name = Path.append fs.mount (Path.of_string name)

let mount kernel ~subject ?(at = Path.of_string "/fs") ?(world_writable = true) () =
  let owner = Subject.principal subject in
  let world_modes =
    if world_writable then [ Access_mode.List; Access_mode.Write ] else [ Access_mode.List ]
  in
  let acl =
    Acl.of_entries [ Acl.allow_all (Acl.Individual owner); Acl.allow Acl.Everyone world_modes ]
  in
  let meta =
    Meta.make ~owner ~acl (Security_class.bottom (Kernel.hierarchy kernel) (Kernel.universe kernel))
  in
  match Kernel.add_dir kernel ~subject at ~meta with
  | Ok () -> Ok { kernel; mount = at }
  | Error e -> Error e

let default_dir_acl owner =
  Acl.of_entries
    [ Acl.allow_all (Acl.Individual owner); Acl.allow Acl.Everyone [ Access_mode.List ] ]

let node_meta fs ~subject ?klass ?acl ~dir () =
  let owner = Subject.principal subject in
  let klass =
    match klass with
    | Some klass -> klass
    | None -> Subject.effective_class subject
  in
  let acl =
    match acl with
    | Some acl -> acl
    | None -> if dir then default_dir_acl owner else Acl.owner_default owner
  in
  ignore fs;
  Meta.make ~owner ~acl klass

let mkdir fs ~subject ?klass ?acl name =
  let meta = node_meta fs ~subject ?klass ?acl ~dir:true () in
  match Resolver.create_dir (Kernel.resolver fs.kernel) ~subject (abs fs name) ~meta with
  | Ok _ -> Ok ()
  | Error denial -> Error (Kernel.error_of_denial denial)

let create fs ~subject ?klass ?acl name contents =
  let meta = node_meta fs ~subject ?klass ?acl ~dir:false () in
  match
    Resolver.create_leaf (Kernel.resolver fs.kernel) ~subject (abs fs name) ~meta
      (File (file_make contents))
  with
  | Ok _ -> Ok ()
  | Error denial -> Error (Kernel.error_of_denial denial)

let resolve_file fs ~subject ~mode name =
  match Resolver.resolve (Kernel.resolver fs.kernel) ~subject ~mode (abs fs name) with
  | Error denial -> Error (Kernel.error_of_denial denial)
  | Ok node -> (
    match Namespace.payload node with
    | Some (File file) -> Ok file
    | Some _ | None ->
      Error (Service.Unresolved (Path.to_string (abs fs name) ^ ": not a file")))

let read fs ~subject name =
  Result.map file_contents (resolve_file fs ~subject ~mode:Access_mode.Read name)

let write fs ~subject name contents =
  Result.map
    (fun file -> file_replace file contents)
    (resolve_file fs ~subject ~mode:Access_mode.Write name)

(* Append accepts either Write_append or full Write: holding the
   stronger right implies the weaker operation. *)
let append fs ~subject name contents =
  let appended =
    match resolve_file fs ~subject ~mode:Access_mode.Write_append name with
    | Ok file -> Ok file
    | Error (Service.Denied _) -> resolve_file fs ~subject ~mode:Access_mode.Write name
    | Error e -> Error e
  in
  Result.map (fun file -> file_append file contents) appended

let remove fs ~subject name =
  match Resolver.remove (Kernel.resolver fs.kernel) ~subject (abs fs name) with
  | Ok () -> Ok ()
  | Error denial -> Error (Kernel.error_of_denial denial)

let list fs ~subject name =
  match Resolver.list_dir (Kernel.resolver fs.kernel) ~subject (abs fs name) with
  | Ok names -> Ok names
  | Error denial -> Error (Kernel.error_of_denial denial)

let set_acl fs ~subject name acl =
  match Resolver.set_acl (Kernel.resolver fs.kernel) ~subject (abs fs name) acl with
  | Ok () -> Ok ()
  | Error denial -> Error (Kernel.error_of_denial denial)

let exists fs name = Namespace.mem (Kernel.namespace fs.kernel) (abs fs name)

let service_mount = Path.of_string "/svc/fs"

let str_arg label args index =
  match List.nth_opt args index with
  | Some (Value.Str s) -> Ok s
  | Some _ | None ->
    Error (Service.Bad_argument (Printf.sprintf "%s: argument %d must be a string" label index))

let service_impl fs name =
  let ( let* ) = Result.bind in
  match name with
  | "create" ->
    fun ctx args ->
      let* file = str_arg "create" args 0 in
      let* contents = str_arg "create" args 1 in
      let* () = create fs ~subject:ctx.Service.subject file contents in
      Ok Value.unit
  | "read" ->
    fun ctx args ->
      let* file = str_arg "read" args 0 in
      let* contents = read fs ~subject:ctx.Service.subject file in
      Ok (Value.str contents)
  | "write" ->
    fun ctx args ->
      let* file = str_arg "write" args 0 in
      let* contents = str_arg "write" args 1 in
      let* () = write fs ~subject:ctx.Service.subject file contents in
      Ok Value.unit
  | "append" ->
    fun ctx args ->
      let* file = str_arg "append" args 0 in
      let* contents = str_arg "append" args 1 in
      let* () = append fs ~subject:ctx.Service.subject file contents in
      Ok Value.unit
  | "remove" ->
    fun ctx args ->
      let* file = str_arg "remove" args 0 in
      let* () = remove fs ~subject:ctx.Service.subject file in
      Ok Value.unit
  | "list" ->
    fun ctx args ->
      let* dir = str_arg "list" args 0 in
      let* names = list fs ~subject:ctx.Service.subject dir in
      Ok (Value.list (List.map Value.str names))
  | other -> Service.fail (Printf.sprintf "fs: no procedure %s" other)

let service_iface =
  Iface.make "fs"
    [
      Iface.proc_sig "create" 2;
      Iface.proc_sig "read" 1;
      Iface.proc_sig "write" 2;
      Iface.proc_sig "append" 2;
      Iface.proc_sig "remove" 1;
      Iface.proc_sig "list" 1;
    ]

let install_service fs ~subject =
  let owner = Subject.principal subject in
  let meta _ = Kernel.default_meta fs.kernel ~owner () in
  Kernel.install_iface fs.kernel ~subject ~mount:service_mount ~meta service_iface
    (service_impl fs)
