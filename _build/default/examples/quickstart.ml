(* Quickstart: boot a kernel, define principals and a lattice, publish
   a service, load an extension, and watch the reference monitor
   mediate everything.

     dune exec examples/quickstart.exe *)

open Exsec_core
open Exsec_extsys

let or_die label = function
  | Ok value -> value
  | Error e -> failwith (Printf.sprintf "%s: %s" label (Service.error_to_string e))

let () =
  (* 1. Principals: individuals and groups, with nesting. *)
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let alice = Principal.individual "alice" in
  let bob = Principal.individual "bob" in
  let staff = Principal.group "staff" in
  List.iter (Principal.Db.add_individual db) [ admin; alice; bob ];
  Principal.Db.add_member db staff (Principal.Ind alice);
  Principal.Db.add_member db staff (Principal.Ind bob);

  (* 2. The security lattice: trust levels x categories (paper 2.2). *)
  let hierarchy = Level.hierarchy [ "local"; "organization"; "others" ] in
  let universe = Category.universe [ "engineering"; "finance" ] in
  let cls level cats =
    Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)
  in

  (* 3. Boot the kernel: one name space, one reference monitor. *)
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let admin_sub = Kernel.admin_subject kernel in
  let alice_sub = Subject.make alice (cls "local" [ "engineering" ]) in
  let bob_sub = Subject.make bob (cls "organization" [ "finance" ]) in

  (* 4. Publish a service with an ACL using the execute mode: staff
        may call it, only alice may extend it (paper 2.1). *)
  let greet_path = Path.of_string "/svc/greet" in
  let greet_meta =
    Meta.make ~owner:admin
      ~acl:
        (Acl.of_entries
           [
             Acl.allow_all (Acl.Individual admin);
             Acl.allow Acl.Everyone [ Access_mode.List ];
             Acl.allow (Acl.Group staff) [ Access_mode.Execute ];
             Acl.allow (Acl.Individual alice) [ Access_mode.Extend ];
           ])
      (Security_class.bottom hierarchy universe)
  in
  or_die "install greet" (Kernel.install_event kernel ~subject:admin_sub greet_path ~meta:greet_meta);

  (* 5. Load an extension that specializes /svc/greet.  The linker
        checks the Extend right before the handler becomes part of the
        system. *)
  (* The extension is pinned at the lattice bottom so its handler
     serves callers of every class; alice's Extend right is what the
     linker verifies. *)
  let extension =
    Extension.make ~name:"greeter" ~author:alice
      ~static_class:(Security_class.bottom hierarchy universe)
      ~extends:
        [
          Extension.extends greet_path (fun ctx args ->
              let who =
                match args with
                | [ Value.Str name ] -> name
                | _ -> "world"
              in
              Ok (Value.str (Printf.sprintf "hello, %s (served for %s)" who ctx.Service.caller)));
        ]
      ()
  in
  (match Linker.link kernel ~subject:alice_sub extension with
  | Ok _ -> print_endline "extension 'greeter' linked"
  | Error e -> failwith (Format.asprintf "link: %a" Linker.pp_link_error e));

  (* 6. Call through the kernel: both staff members may execute. *)
  let call subject name =
    match Kernel.call kernel ~subject ~caller:"quickstart" greet_path [ Value.str name ] with
    | Ok (Value.Str reply) -> Printf.printf "%s -> %s\n" name reply
    | Ok other -> Format.printf "%s -> %a@." name Value.pp other
    | Error e -> Printf.printf "%s -> DENIED (%s)\n" name (Service.error_to_string e)
  in
  call alice_sub "alice";
  call bob_sub "bob";

  (* 7. An outsider is refused by the ACL — and the denial is in the
        audit log. *)
  let eve = Principal.individual "eve" in
  Principal.Db.add_individual db eve;
  let eve_sub = Subject.make eve (cls "others" []) in
  call eve_sub "eve";

  let audit = Reference_monitor.audit (Kernel.monitor kernel) in
  Printf.printf "audit: %d decisions (%d granted, %d denied)\n" (Audit.total audit)
    (Audit.granted_total audit) (Audit.denied_total audit);
  let interesting =
    List.filter (fun e -> not (Decision.is_granted e.Audit.decision)) (Audit.events audit)
  in
  List.iter (fun e -> Format.printf "  %a@." Audit.pp_event e) interesting;

  (* 8. The same monitor can also answer pure what-if questions. *)
  let decision =
    Reference_monitor.decide (Kernel.monitor kernel) ~subject:bob_sub ~meta:greet_meta
      ~mode:Access_mode.Extend
  in
  Format.printf "may bob extend /svc/greet? %a@." Decision.pp decision
