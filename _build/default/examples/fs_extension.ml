(* The paper's motivating example (section 1.1): "an extension can be
   used to provide a new file system that is not supported by the
   original system.  To implement this file system, the extension ...
   uses existing services (such as mbuf management) and builds on
   them.  At the same time, to access the new file system, a user
   invokes the existing, general file system interfaces which have
   been extended."

   This example builds exactly that: a log-structured toy file system
   ("logfs") implemented over the mbuf service, registered behind the
   VFS switch, and driven by a user who only ever talks to /svc/vfs.

     dune exec examples/fs_extension.exe *)

open Exsec_core
open Exsec_extsys
open Exsec_services

let or_die label = function
  | Ok value -> value
  | Error e -> failwith (Printf.sprintf "%s: %s" label (Service.error_to_string e))

let mbuf name = Path.of_string ("/svc/mbuf/" ^ name)

(* logfs: an append-only log of (file, contents) records held in mbuf
   buffers; reads scan the log backwards, so the newest record wins —
   a miniature log-structured file system. *)
let logfs_extension ~author =
  let log : (string * int) list ref = ref [] in
  let write_record ctx file data =
    match ctx.Service.call (mbuf "alloc") [] with
    | Ok (Value.Int handle) -> (
      match
        ctx.Service.call (mbuf "write") [ Value.int handle; Value.blob (Bytes.of_string data) ]
      with
      | Ok _ ->
        log := (file, handle) :: !log;
        Ok Value.unit
      | Error e -> Error e)
    | Ok _ -> Error (Service.Ext_failure "alloc returned nonsense")
    | Error e -> Error e
  in
  let backend_write ctx args =
    match args with
    | [ Value.Str _fstype; Value.Str file; Value.Str data ] -> write_record ctx file data
    | _ -> Error (Service.Bad_argument "logfs write")
  in
  let backend_read ctx args =
    match args with
    | [ Value.Str _fstype; Value.Str file ] -> (
      match List.assoc_opt file !log with
      | None -> Error (Service.Ext_failure (file ^ ": not found in the log"))
      | Some handle -> (
        match ctx.Service.call (mbuf "read") [ Value.int handle ] with
        | Ok (Value.Blob b) -> Ok (Value.str (Bytes.to_string b))
        | Ok _ -> Error (Service.Ext_failure "read returned nonsense")
        | Error e -> Error e))
    | _ -> Error (Service.Bad_argument "logfs read")
  in
  let backend_stat ctx args =
    match backend_read ctx args with
    | Ok (Value.Str contents) -> Ok (Value.int (String.length contents))
    | Ok _ -> Error (Service.Ext_failure "stat")
    | Error e -> Error e
  in
  Extension.make ~name:"logfs" ~author
    ~imports:[ mbuf "alloc"; mbuf "write"; mbuf "read" ]
    ~extends:
      [
        Extension.extends ~guard:(Vfs.guard_fstype "logfs") Vfs.backend_read_event backend_read;
        Extension.extends ~guard:(Vfs.guard_fstype "logfs") Vfs.backend_write_event backend_write;
        Extension.extends ~guard:(Vfs.guard_fstype "logfs") Vfs.backend_stat_event backend_stat;
      ]
    ()

let () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let dev = Principal.individual "dev" in
  let user = Principal.individual "user" in
  List.iter (Principal.Db.add_individual db) [ admin; dev; user ];
  let hierarchy = Level.hierarchy [ "local"; "outside" ] in
  let universe = Category.universe [] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let admin_sub = Kernel.admin_subject kernel in
  let local = Security_class.make (Level.top hierarchy) (Category.empty universe) in
  let dev_sub = Subject.make dev local in
  let user_sub = Subject.make user local in

  (* Base system: the mbuf service and the vfs switch. *)
  let pool = Mbuf.create ~buffer_capacity:256 () in
  or_die "mbuf" (Mbuf.install pool kernel ~subject:admin_sub);
  let vfs = or_die "vfs" (Vfs.install kernel ~subject:admin_sub) in
  Printf.printf "base system up: /svc/mbuf, /svc/vfs\n";

  (* Without the Extend right, linking is refused — protection first. *)
  (match Linker.link kernel ~subject:dev_sub (logfs_extension ~author:dev) with
  | Error e -> Format.printf "link before grant: refused (%a)@." Linker.pp_link_error e
  | Ok _ -> failwith "linked without the extend right!");

  or_die "grant" (Vfs.grant_extend vfs ~subject:admin_sub (Acl.Individual dev));
  (match Linker.link kernel ~subject:dev_sub (logfs_extension ~author:dev) with
  | Ok linked ->
    Printf.printf "logfs linked: imports %s\n"
      (String.concat ", " (List.map Path.to_string (Linker.Linked.imports linked)))
  | Error e -> failwith (Format.asprintf "link: %a" Linker.pp_link_error e));

  or_die "mount" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"logfs" ~prefix:"/log/");
  Printf.printf "mounted logfs at /log/\n\n";

  (* The user exercises the new file system through the general
     interface, never naming the extension. *)
  or_die "write 1" (Vfs.write vfs ~subject:user_sub "/log/motd" "welcome to logfs");
  or_die "write 2" (Vfs.write vfs ~subject:user_sub "/log/motd" "welcome to logfs, v2");
  or_die "write 3" (Vfs.write vfs ~subject:user_sub "/log/notes" "extensions are services too");
  let read path =
    Printf.printf "read %-12s -> %S (stat: %d bytes)\n" path
      (or_die "read" (Vfs.read vfs ~subject:user_sub path))
      (or_die "stat" (Vfs.stat vfs ~subject:user_sub path))
  in
  read "/log/motd";
  read "/log/notes";
  Printf.printf "\nmbuf pool after the workload: %d live buffer(s), %d allocated in total\n"
    (Mbuf.live pool) (Mbuf.allocated_total pool);
  Printf.printf "(log-structured: each write burns a fresh buffer; the newest record wins)\n"
