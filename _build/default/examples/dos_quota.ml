(* Denial of service, the paper's declared open problem (section 1),
   answered with per-principal resource quotas: a hostile applet
   floods the kernel, spawns thread bombs and hoards extensions — and
   only exhausts itself.

     dune exec examples/dos_quota.exe *)

open Exsec_core
open Exsec_extsys

let or_die label = function
  | Ok value -> value
  | Error e -> failwith (Printf.sprintf "%s: %s" label (Service.error_to_string e))

let () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let user = Principal.individual "user" in
  let flooder = Principal.individual "flooder" in
  List.iter (Principal.Db.add_individual db) [ admin; user; flooder ];
  let hierarchy = Level.hierarchy [ "local"; "outside" ] in
  let universe = Category.universe [] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let admin_sub = Kernel.admin_subject kernel in
  or_die "install"
    (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/work")
       ~meta:(Kernel.default_meta kernel ~owner:admin ())
       (Service.proc "work" 0 (Service.const (Value.str "done"))));
  let bottom = Security_class.bottom hierarchy universe in
  let user_sub = Subject.make user bottom in
  let flooder_sub = Subject.make flooder bottom in

  (* The operator sandboxes the untrusted principal: 1000 calls, 4
     live threads, 1 loaded extension.  Everyone else is unlimited. *)
  Quota.set (Kernel.quota kernel) flooder
    {
      Quota.max_calls = Some 1_000;
      max_threads = Some 4;
      max_extensions = Some 1;
    };
  print_endline "quota for 'flooder': 1000 calls, 4 threads, 1 extension\n";

  (* The flood. *)
  let flood_attempts = 5_000 in
  let served = ref 0 in
  let refused = ref 0 in
  for _ = 1 to flood_attempts do
    match Kernel.call kernel ~subject:flooder_sub ~caller:"flood" (Path.of_string "/svc/work") [] with
    | Ok _ -> incr served
    | Error (Service.Quota_exceeded _) -> incr refused
    | Error e -> failwith (Service.error_to_string e)
  done;
  Printf.printf "flooder fires %d requests: %d served, %d refused by quota\n"
    flood_attempts !served !refused;

  (* The thread bomb. *)
  let bombs = ref 0 in
  let duds = ref 0 in
  for i = 1 to 64 do
    match
      Kernel.spawn kernel ~subject:flooder_sub
        ~name:(Printf.sprintf "bomb%d" i)
        ~body:(fun () -> Thread.Runnable)
    with
    | Ok _ -> incr bombs
    | Error (Service.Quota_exceeded _) -> incr duds
    | Error e -> failwith (Service.error_to_string e)
  done;
  Printf.printf "thread bomb of 64: %d spawned, %d refused\n" !bombs !duds;

  (* Extension hoarding. *)
  let hoarded = ref 0 in
  let blocked = ref 0 in
  for i = 1 to 8 do
    match
      Linker.link kernel ~subject:flooder_sub
        (Extension.make ~name:(Printf.sprintf "hog%d" i) ~author:flooder ())
    with
    | Ok _ -> incr hoarded
    | Error (Linker.Quota_refused _) -> incr blocked
    | Error e -> failwith (Format.asprintf "%a" Linker.pp_link_error e)
  done;
  Printf.printf "extension hoard of 8: %d loaded, %d refused\n\n" !hoarded !blocked;

  (* Meanwhile, honest users are untouched. *)
  (match Kernel.call kernel ~subject:user_sub ~caller:"user" (Path.of_string "/svc/work") [] with
  | Ok (Value.Str reply) -> Printf.printf "honest user during the flood: %s\n" reply
  | Ok _ | Error _ -> failwith "honest user affected!");
  let audit = Reference_monitor.audit (Kernel.monitor kernel) in
  Printf.printf
    "audit saw %d decisions; quota refusals never reached the monitor at all\n"
    (Audit.total audit);
  Printf.printf
    "(access control says WHO may use a service; quotas bound HOW MUCH -- the\n\
    \ paper's open DoS question, answered with one opt-in table)\n"
