(* The ThreadMurder incident (paper, section 1.2; after McGraw &
   Felten): a hostile applet kills the threads of all other applets in
   its sandbox, including applets loaded and linked after it.

   Run under two regimes:
   - a flat Java-style sandbox (all applets share one class, thread
     objects world-writable): the murderer wipes out everyone;
   - the paper's model (threads are protected objects with owner ACLs
     and per-applet classes): the murderer only reaches itself.

     dune exec examples/thread_murder.exe *)

open Exsec_core
open Exsec_extsys

let immortal () = Thread.Runnable

let boot () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  List.iter
    (fun name -> Principal.Db.add_individual db (Principal.individual name))
    [ "admin"; "dept1"; "dept2"; "murderer" ];
  let hierarchy = Level.hierarchy [ "local"; "organization"; "others" ] in
  let universe = Category.universe [ "d1"; "d2" ] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let cls level cats =
    Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)
  in
  kernel, cls

let spawn kernel subject name =
  match Kernel.spawn kernel ~subject ~name ~body:immortal with
  | Ok thread -> thread
  | Error e -> failwith (Service.error_to_string e)

(* What the hostile applet actually does: list /threads, kill whatever
   the kernel lets it. *)
let rampage kernel ~subject =
  let visible =
    match Resolver.list_dir (Kernel.resolver kernel) ~subject (Path.of_string "/threads") with
    | Ok names -> names
    | Error _ -> []
  in
  List.iter
    (fun name ->
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | None -> ()
      | Some id -> (
        match Kernel.kill kernel ~subject ~victim:id with
        | Ok () -> Printf.printf "    killed %s\n" name
        | Error _ -> Printf.printf "    %s: denied\n" name))
    visible

let report label threads =
  Printf.printf "  %s\n" label;
  List.iter
    (fun thread ->
      Printf.printf "    %-12s %s\n" (Thread.name thread)
        (if Thread.is_alive thread then "alive" else "DEAD"))
    threads

let () =
  Printf.printf "--- flat sandbox (the Java 1.x regime) ---\n";
  let kernel, cls = boot () in
  let sandbox_class = cls "organization" [ "d1" ] in
  let flat name principal =
    let subject = Subject.make (Principal.individual principal) sandbox_class in
    let thread = spawn kernel subject name in
    (* One flat sandbox: no per-thread protection. *)
    Meta.set_acl_raw (Thread.meta thread) (Acl.of_entries [ Acl.allow_all Acl.Everyone ]);
    thread
  in
  let v1 = flat "applet-a" "dept1" in
  let v2 = flat "applet-b" "dept2" in
  let murderer = Subject.make (Principal.individual "murderer") sandbox_class in
  let own = spawn kernel murderer "threadmurder" in
  Meta.set_acl_raw (Thread.meta own) (Acl.of_entries [ Acl.allow_all Acl.Everyone ]);
  let late = flat "late-applet" "dept1" in
  Printf.printf "  threadmurder goes on a rampage:\n";
  rampage kernel ~subject:murderer;
  report "aftermath:" [ v1; v2; own; late ];

  Printf.printf "\n--- the paper's model: threads are protected objects ---\n";
  let kernel, cls = boot () in
  let applet name principal cats =
    let subject = Subject.make (Principal.individual principal) (cls "organization" cats) in
    spawn kernel subject name
  in
  let v1 = applet "applet-a" "dept1" [ "d1" ] in
  let v2 = applet "applet-b" "dept2" [ "d2" ] in
  let murderer =
    Subject.make (Principal.individual "murderer") (cls "organization" [ "d1" ])
  in
  let own = spawn kernel murderer "threadmurder" in
  let late = applet "late-applet" "dept1" [ "d1" ] in
  Printf.printf "  threadmurder goes on a rampage:\n";
  rampage kernel ~subject:murderer;
  report "aftermath:" [ v1; v2; own; late ];
  Printf.printf
    "\nsame-category applets are protected by their owner ACLs (DAC), applets in\n\
     other compartments additionally by the category lattice (MAC); only the\n\
     murderer's own thread is lost.\n"
