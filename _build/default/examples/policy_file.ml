(* A deployment's whole security configuration as one reviewable
   policy file: lattice, principals, clearances, per-object ACLs and
   classes — parsed, built, queried, and audited for information
   flows.

     dune exec examples/policy_file.exe *)

open Exsec_core

let policy_source =
  {|# acme corp: extension security policy
levels local > organization > others
categories myself department-1 department-2 outside

individual root
individual alice
individual bob
individual mallory
group staff = alice bob mallory

clearance root   = local { myself department-1 department-2 outside } trusted
clearance alice  = local { myself department-1 }
clearance bob    = organization { department-2 }
clearance mallory = organization { department-1 }

object /fs/quarterly-report {
  owner alice
  class organization { department-1 }
  allow user:alice read write administrate
  allow group:staff read
  deny  user:mallory read        # suspended pending investigation
  allow everyone list
}

object /svc/payroll/run {
  owner root
  class local { department-1 }
  allow user:root execute administrate
  allow user:alice execute
  allow everyone list
}
|}

let () =
  (* 1. Parse and build. *)
  let spec =
    match Policy_text.parse policy_source with
    | Ok spec -> spec
    | Error e -> failwith (Format.asprintf "%a" Policy_text.pp_error e)
  in
  let built =
    match Policy_text.build spec with
    | Ok built -> built
    | Error e -> failwith (Format.asprintf "%a" Policy_text.pp_error e)
  in
  Printf.printf "policy loaded: %d principals, %d objects\n"
    (List.length spec.Policy_text.individuals)
    (List.length spec.Policy_text.objects);

  (* 2. The canonical form survives a round trip. *)
  let canonical = Policy_text.to_string spec in
  (match Policy_text.parse canonical with
  | Ok again when Policy_text.equal spec again ->
    Printf.printf "canonical form round-trips (%d bytes)\n" (String.length canonical)
  | _ -> failwith "round-trip failed");

  (* 3. Sessions come from the clearance registry, never hand-rolled. *)
  let login name =
    match Clearance.login built.Policy_text.registry (Principal.individual name) with
    | Ok subject -> subject
    | Error e -> failwith (Format.asprintf "login %s: %a" name Clearance.pp_error e)
  in
  let monitor = Reference_monitor.create built.Policy_text.db in
  let login_at name level cats =
    match
      Clearance.login built.Policy_text.registry
        ~at:
          (Security_class.make
             (Level.of_name_exn built.Policy_text.hierarchy level)
             (Category.of_names built.Policy_text.universe cats))
        (Principal.individual name)
    with
    | Ok subject -> subject
    | Error e -> failwith (Format.asprintf "login %s: %a" name Clearance.pp_error e)
  in
  let ask ?(note = "") subject subject_name object_path mode =
    let meta = List.assoc object_path built.Policy_text.metas in
    let decision = Reference_monitor.check monitor ~subject ~meta ~object_name:object_path ~mode in
    Format.printf "  %-16s %-13s %-24s %a%s@." subject_name
      (Access_mode.to_string mode) object_path Decision.pp decision note
  in
  print_endline "\ndecisions under the loaded policy:";
  ask (login "alice") "alice" "/fs/quarterly-report" Access_mode.Read;
  (* Writing the organization-classified report from a local session
     would be a write-down; alice edits it from a session AT the
     report's level — standard MLS practice, enforced at login. *)
  ask
    ~note:"   (session above the report's level)"
    (login "alice") "alice" "/fs/quarterly-report" Access_mode.Write;
  ask
    (login_at "alice" "organization" [ "department-1" ])
    "alice@org/{d1}" "/fs/quarterly-report" Access_mode.Write;
  ask (login "mallory") "mallory" "/fs/quarterly-report" Access_mode.Read;  (* negative entry *)
  ask (login "bob") "bob" "/fs/quarterly-report" Access_mode.Read;  (* MAC: wrong department *)
  ask (login "alice") "alice" "/svc/payroll/run" Access_mode.Execute;
  ask (login "bob") "bob" "/svc/payroll/run" Access_mode.Execute;
  ask (login "root") "root" "/svc/payroll/run" Access_mode.Administrate;

  (* 4. A session above clearance is refused at login, before any
        object is ever touched. *)
  (match
     Clearance.login built.Policy_text.registry
       ~at:
         (Security_class.make
            (Level.of_name_exn built.Policy_text.hierarchy "local")
            (Category.of_names built.Policy_text.universe [ "myself" ]))
       (Principal.individual "bob")
   with
  | Error (Clearance.Above_clearance _) ->
    print_endline "\nbob asking for a local session: refused at login (above clearance)"
  | _ -> failwith "bob escalated!");

  (* 5. The audit trail of everything above, flow-checked.  The
        analyser flags one finding — and it is right to: alice read
        the report from her *local* session and later wrote it from
        her *organization* session.  Each access is individually
        legal, but the pair gives the principal a channel from local
        to organization.  Multi-level sessions are exactly what a
        high-water-mark audit exists to surface; a stricter site
        would forbid alice's relogin downward while her watermark is
        raised. *)
  let report = Flow.analyse_log (Reference_monitor.audit monitor) in
  Format.printf "\nflow analysis of the audit trail: %a@." Flow.pp_report report;
  print_endline
    "(the finding is alice's local-session read followed by her org-session write:\n\
    \ individually legal, jointly a potential downward channel -- surfaced by the\n\
    \ high-water-mark replay, for the security officer to judge)"
