(* Network endpoints as protected objects: the sandbox-era
   "socket to third host" escape, closed by the one mechanism that
   protects everything else.

     dune exec examples/netguard.exe *)

open Exsec_core
open Exsec_extsys
open Exsec_services

let or_die label = function
  | Ok value -> value
  | Error e -> failwith (Printf.sprintf "%s: %s" label (Service.error_to_string e))

let () =
  let db = Principal.Db.create () in
  let add name =
    let ind = Principal.individual name in
    Principal.Db.add_individual db ind;
    ind
  in
  let admin = add "admin" in
  let webmaster = add "webmaster" in
  let dbadmin = add "dbadmin" in
  let applet = add "applet" in
  let hierarchy = Level.hierarchy [ "local"; "organization"; "others" ] in
  let universe = Category.universe [ "web"; "db" ] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let cls level cats =
    Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)
  in
  let net = or_die "netstack" (Netstack.install kernel ~subject:(Kernel.admin_subject kernel)) in

  (* The site's services listen at their own classes. *)
  let web_sub = Subject.make webmaster (cls "others" [ "web" ]) in
  let db_sub = Subject.make dbadmin (cls "organization" [ "db" ]) in
  or_die "www" (Netstack.listen net ~subject:web_sub ~host:"www" ~port:80 ());
  or_die "postgres"
    (Netstack.listen net ~subject:db_sub
       ~acl:
         (Acl.of_entries
            [
              Acl.allow_all (Acl.Individual dbadmin);
              Acl.allow Acl.Everyone [ Access_mode.List ];
              Acl.allow (Acl.Individual webmaster)
                [ Access_mode.Execute; Access_mode.Write_append ];
            ])
       ~host:"postgres" ~port:5432 ());
  print_endline "listening: www:80 (others/{web}), postgres:5432 (organization/{db})";

  (* A downloaded applet runs at others/{web}: it may talk to the web
     host it came from... *)
  let applet_sub = Subject.make applet (cls "others" [ "web" ]) in
  let conn = or_die "applet->www" (Netstack.connect net ~subject:applet_sub ~host:"www" ~port:80) in
  or_die "send" (Netstack.send net ~subject:applet_sub conn "GET /");
  print_endline "applet -> www:80        connected, request delivered";

  (* ...but the database is a third host at a class the applet does
     not dominate: the connect dies inside the name space, before any
     service code runs. *)
  (match Netstack.connect net ~subject:applet_sub ~host:"postgres" ~port:5432 with
  | Error e -> Printf.printf "applet -> postgres:5432 DENIED (%s)\n" (Service.error_to_string e)
  | Ok _ -> failwith "socket to third host!");

  (* The web front-end is on the postgres ACL; it opens the database
     connection from a session holding ONLY the db category (least
     privilege: a {web,db} session could not append into a {db}-only
     endpoint, and rightly so -- its web-tainted state must not flow
     there). *)
  let web_runtime = Subject.make webmaster (cls "organization" [ "db" ]) in
  let conn = or_die "web->db" (Netstack.connect net ~subject:web_runtime ~host:"postgres" ~port:5432) in
  or_die "query" (Netstack.send net ~subject:web_runtime conn "SELECT 1");
  Printf.printf "web -> postgres:5432    query delivered (%d pending)\n"
    (Netstack.pending net ~host:"postgres" ~port:5432);
  let inbox = or_die "drain" (Netstack.recv net ~subject:db_sub ~host:"postgres" ~port:5432) in
  Printf.printf "dbadmin drains inbox:   %s\n" (String.concat ", " inbox);

  (* Everything above went through one reference monitor. *)
  let audit = Reference_monitor.audit (Kernel.monitor kernel) in
  Printf.printf "\naudit: %d decisions, %d denied -- every socket operation is in the log\n"
    (Audit.total audit) (Audit.denied_total audit)
