(* The paper's worked example (sections 2 and 2.2), as a runnable
   demo: three trust levels, four categories, five applets, four
   files, and the full sharing matrix enforced by MAC alone.

     dune exec examples/applet_sandbox.exe *)

open Exsec_core
open Exsec_services
open Exsec_workload

let () =
  let scenario = Scenario.build () in
  Format.printf "lattice: levels %s; categories %s@."
    (String.concat " > " (Level.names scenario.Scenario.hierarchy))
    (String.concat ", " (Category.universe_names scenario.Scenario.universe));
  Format.printf "@.subjects:@.";
  List.iter
    (fun (name, subject) -> Format.printf "  %-8s %a@." name Subject.pp subject)
    (Scenario.subjects scenario);
  Format.printf "@.read-access matrix (measured by actually reading):@.";
  Format.printf "%-9s" "";
  List.iter (Format.printf " %-13s") Scenario.files;
  Format.printf "@.";
  List.iter
    (fun (name, _) ->
      Format.printf "%-9s" name;
      List.iter
        (fun file ->
          Format.printf " %-13s"
            (if Scenario.measured_read scenario ~subject_name:name ~file then "read"
             else "-"))
        Scenario.files;
      Format.printf "@.")
    (Scenario.subjects scenario);
  (* The text's walk-through, spelled out. *)
  Format.printf "@.the paper's claims, checked:@.";
  let claim text value = Format.printf "  [%s] %s@." (if value then "ok" else "FAIL") text in
  claim "the user's applets access all files (including other applets' data)"
    (List.for_all
       (fun file -> Scenario.measured_read scenario ~subject_name:"user" ~file)
       Scenario.files);
  claim "department-1 and department-2 applets cannot read each other's files"
    ((not (Scenario.measured_read scenario ~subject_name:"d1" ~file:"d2-data"))
    && not (Scenario.measured_read scenario ~subject_name:"d2" ~file:"d1-data"));
  claim "an applet holding both department labels reads both files"
    (Scenario.measured_read scenario ~subject_name:"merged" ~file:"d1-data"
    && Scenario.measured_read scenario ~subject_name:"merged" ~file:"d2-data");
  claim "outside applets cannot access local files"
    (not (Scenario.measured_read scenario ~subject_name:"outside" ~file:"user-data"));
  (* Discretionary control cannot be used to leak: the files are
     wide open at the ACL layer, yet writes down are refused. *)
  (match Memfs.write scenario.Scenario.fs ~subject:scenario.Scenario.d1_applet "outside-data" "leak" with
  | Error _ -> claim "a department applet cannot write down to the outside file" true
  | Ok () -> claim "a department applet cannot write down to the outside file" false);
  (match Memfs.append scenario.Scenario.fs ~subject:scenario.Scenario.d1_applet "user-data" "+up" with
  | Ok () -> claim "information may still flow up (append to the user's file)" true
  | Error _ -> claim "information may still flow up (append to the user's file)" false)
