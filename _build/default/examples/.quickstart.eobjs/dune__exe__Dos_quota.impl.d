examples/dos_quota.ml: Audit Category Exsec_core Exsec_extsys Extension Format Kernel Level Linker List Path Principal Printf Quota Reference_monitor Security_class Service Subject Thread Value
