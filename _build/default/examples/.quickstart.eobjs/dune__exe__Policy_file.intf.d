examples/policy_file.mli:
