examples/thread_murder.mli:
