examples/policy_file.ml: Access_mode Category Clearance Decision Exsec_core Flow Format Level List Policy_text Principal Printf Reference_monitor Security_class String
