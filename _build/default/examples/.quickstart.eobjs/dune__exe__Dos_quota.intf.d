examples/dos_quota.mli:
