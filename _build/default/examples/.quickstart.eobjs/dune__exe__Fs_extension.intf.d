examples/fs_extension.mli:
