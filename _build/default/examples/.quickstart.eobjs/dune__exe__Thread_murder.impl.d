examples/thread_murder.ml: Acl Category Exsec_core Exsec_extsys Kernel Level List Meta Path Principal Printf Resolver Security_class Service String Subject Thread
