examples/netguard.ml: Access_mode Acl Audit Category Exsec_core Exsec_extsys Exsec_services Kernel Level Netstack Principal Printf Reference_monitor Security_class Service String Subject
