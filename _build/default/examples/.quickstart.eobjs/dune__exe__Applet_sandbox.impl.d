examples/applet_sandbox.ml: Category Exsec_core Exsec_services Exsec_workload Format Level List Memfs Scenario String Subject
