examples/applet_sandbox.mli:
