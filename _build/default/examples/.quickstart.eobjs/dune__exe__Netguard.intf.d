examples/netguard.mli:
