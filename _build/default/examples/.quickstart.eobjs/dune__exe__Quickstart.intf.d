examples/quickstart.mli:
