open Exsec_core
open Exsec_extsys

type endpoint_state = { mutable inbox : string list (* newest first *) }
type Kernel.entry += Endpoint

type t = {
  kernel : Kernel.t;
  states : (string, endpoint_state) Hashtbl.t;  (* keyed by rendered path *)
}

type conn = {
  conn_host : string;
  conn_port : int;
}

let net_root = Path.of_string "/net"

let endpoint_path ~host ~port =
  Path.of_segments [ "net"; host; string_of_int port ]

let install kernel ~subject =
  let owner = Subject.principal subject in
  let acl =
    Acl.of_entries
      [
        Acl.allow_all (Acl.Individual owner);
        Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Write ];
      ]
  in
  let meta =
    Meta.make ~owner ~acl
      (Security_class.bottom (Kernel.hierarchy kernel) (Kernel.universe kernel))
  in
  match Kernel.add_dir kernel ~subject net_root ~meta with
  | Ok () -> Ok { kernel; states = Hashtbl.create 16 }
  | Error e -> Error e

let default_acl owner =
  Acl.of_entries
    [
      Acl.allow_all (Acl.Individual owner);
      Acl.allow Acl.Everyone
        [ Access_mode.List; Access_mode.Execute; Access_mode.Write_append ];
    ]

let host_dir net ~subject host =
  let path = Path.child net_root host in
  if Namespace.mem (Kernel.namespace net.kernel) path then Ok ()
  else begin
    let owner = Subject.principal subject in
    let acl =
      Acl.of_entries
        [
          Acl.allow_all (Acl.Individual owner);
          Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Write ];
        ]
    in
    (* The host directory carries the listener's class: a client that
       cannot observe the host's level cannot even see its ports. *)
    let meta = Meta.make ~owner ~acl (Subject.effective_class subject) in
    Kernel.add_dir net.kernel ~subject path ~meta
  end

let listen net ~subject ?acl ?klass ~host ~port () =
  let ( let* ) = Result.bind in
  let* () = host_dir net ~subject host in
  let owner = Subject.principal subject in
  let acl =
    match acl with
    | Some acl -> acl
    | None -> default_acl owner
  in
  let klass =
    match klass with
    | Some klass -> klass
    | None -> Subject.effective_class subject
  in
  let path = endpoint_path ~host ~port in
  let* () = Kernel.install_entry net.kernel ~subject path ~meta:(Meta.make ~owner ~acl klass) Endpoint in
  Hashtbl.replace net.states (Path.to_string path) { inbox = [] };
  Ok ()

let resolve_endpoint net ~subject ~mode ~host ~port =
  let path = endpoint_path ~host ~port in
  match Resolver.resolve (Kernel.resolver net.kernel) ~subject ~mode path with
  | Error denial -> Error (Kernel.error_of_denial denial)
  | Ok node -> (
    match Namespace.payload node with
    | Some Endpoint -> (
      match Hashtbl.find_opt net.states (Path.to_string path) with
      | Some state -> Ok state
      | None -> Error (Service.Unresolved (Path.to_string path ^ ": endpoint state missing")))
    | Some _ | None ->
      Error (Service.Unresolved (Path.to_string path ^ ": not a network endpoint")))

let connect net ~subject ~host ~port =
  match resolve_endpoint net ~subject ~mode:Access_mode.Execute ~host ~port with
  | Ok _ -> Ok { conn_host = host; conn_port = port }
  | Error e -> Error e

let send net ~subject conn payload =
  match
    resolve_endpoint net ~subject ~mode:Access_mode.Write_append ~host:conn.conn_host
      ~port:conn.conn_port
  with
  | Error e -> Error e
  | Ok state ->
    state.inbox <- payload :: state.inbox;
    Ok ()

let recv net ~subject ~host ~port =
  match resolve_endpoint net ~subject ~mode:Access_mode.Read ~host ~port with
  | Error e -> Error e
  | Ok state ->
    let drained = List.rev state.inbox in
    state.inbox <- [];
    Ok drained

let close net ~subject ~host ~port =
  let path = endpoint_path ~host ~port in
  match Resolver.remove (Kernel.resolver net.kernel) ~subject path with
  | Ok () ->
    Hashtbl.remove net.states (Path.to_string path);
    Ok ()
  | Error denial -> Error (Kernel.error_of_denial denial)

let pending net ~host ~port =
  match Hashtbl.find_opt net.states (Path.to_string (endpoint_path ~host ~port)) with
  | Some state -> List.length state.inbox
  | None -> 0
