(** The virtual file system switch: the paper's motivating example of
    extension (section 1.1).

    [/svc/vfs] publishes the {e general} file-system interface users
    call ([read], [write], [stat]); behind it, per-file-system-type
    {e backends} supply the implementation.  The backend procedures
    are {e events}: a new file-system extension gains nothing by
    merely existing — it must hold [Extend] on the backend events to
    register its handlers, and callers reach it through the existing
    interface, exactly the two interaction modes of section 1.1.

    Backend handler convention (guarded on the file-system type, the
    first argument):
    - [backend_read  : (str fstype, str subpath) -> str]
    - [backend_write : (str fstype, str subpath, str data) -> unit]
    - [backend_stat  : (str fstype, str subpath) -> int]  (size)

    Because handlers carry their extension's static class, a caller
    only ever reaches a backend whose class its own effective class
    dominates — the dispatcher's class-indexed selection of section
    2.2. *)

open Exsec_core
open Exsec_extsys

type t

val install : Kernel.t -> subject:Subject.t -> (t, Service.error) result
(** Publish the switch at [/svc/vfs].  The [mount]/[unmount]
    procedures are restricted to the installing principal; the rest
    are world-callable.  Anyone holding [Extend] on the backend
    events may register a backend. *)

val mount_point : Path.t
val backend_read_event : Path.t
val backend_write_event : Path.t
val backend_stat_event : Path.t

val guard_fstype : string -> Value.t list -> bool
(** Guard matching events whose first argument is the given
    file-system type — for use in {!Exsec_extsys.Extension.extends}. *)

val mount_fs :
  t -> subject:Subject.t -> fstype:string -> prefix:string ->
  (unit, Service.error) result
(** Route paths under [prefix] to backends of [fstype] (longest
    prefix wins).  Checked as a call to [/svc/vfs/mount]. *)

val unmount_fs :
  t -> subject:Subject.t -> prefix:string -> (unit, Service.error) result

val mounts : t -> (string * string) list
(** Current [(prefix, fstype)] table, longest prefix first. *)

val read : t -> subject:Subject.t -> string -> (string, Service.error) result
val write : t -> subject:Subject.t -> string -> string -> (unit, Service.error) result
val stat : t -> subject:Subject.t -> string -> (int, Service.error) result
(** Checked convenience wrappers over the published procedures. *)

val grant_extend :
  t -> subject:Subject.t -> Acl.who -> (unit, Service.error) result
(** Give [who] the [Extend] right on all three backend events (the
    installer decides who may provide file systems). *)
