lib/services/netstack.mli: Acl Exsec_core Exsec_extsys Kernel Path Security_class Service Subject
