lib/services/introspect.mli: Exsec_core Exsec_extsys Kernel Path Service Subject
