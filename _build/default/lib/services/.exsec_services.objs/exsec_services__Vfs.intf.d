lib/services/vfs.mli: Acl Exsec_core Exsec_extsys Kernel Path Service Subject Value
