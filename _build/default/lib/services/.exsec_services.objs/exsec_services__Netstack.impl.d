lib/services/netstack.ml: Access_mode Acl Exsec_core Exsec_extsys Hashtbl Kernel List Meta Namespace Path Resolver Result Security_class Service Subject
