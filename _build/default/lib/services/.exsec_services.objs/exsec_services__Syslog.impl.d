lib/services/syslog.ml: Access_mode Acl Exsec_core Exsec_extsys Kernel List Meta Namespace Path Resolver Result Security_class Service Subject
