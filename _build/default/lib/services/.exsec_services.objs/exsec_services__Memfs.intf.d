lib/services/memfs.mli: Acl Exsec_core Exsec_extsys Kernel Path Security_class Service Subject
