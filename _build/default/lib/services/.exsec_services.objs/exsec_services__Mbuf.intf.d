lib/services/mbuf.mli: Exsec_core Exsec_extsys Kernel Path Service Subject
