lib/services/introspect.ml: Access_mode Acl Audit Exsec_core Exsec_extsys Format Kernel List Meta Namespace Path Reference_monitor Result Sched Security_class Service Stdlib Subject Thread Value
