lib/services/memfs.ml: Access_mode Acl Exsec_core Exsec_extsys Iface Kernel List Meta Namespace Path Printf Resolver Result Security_class Service Subject Value
