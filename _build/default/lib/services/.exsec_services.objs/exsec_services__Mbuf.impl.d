lib/services/mbuf.ml: Buffer Bytes Exsec_core Exsec_extsys Hashtbl Iface Kernel Path Printf Service Stdlib Subject Value
