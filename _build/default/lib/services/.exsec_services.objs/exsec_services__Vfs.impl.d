lib/services/vfs.ml: Access_mode Acl Exsec_core Exsec_extsys Format Iface Int Kernel List Meta Namespace Path Principal Printf Resolver Result Security_class Service String Subject Value
