lib/services/syslog.mli: Exsec_core Exsec_extsys Kernel Path Security_class Service Subject
