open Exsec_core
open Exsec_extsys

type t = {
  kernel : Kernel.t;
  owner : Principal.individual;
  mutable table : (string * string) list;  (* (prefix, fstype), longest first *)
}

let mount_point = Path.of_string "/svc/vfs"
let backend_read_event = Path.of_string "/svc/vfs/backend_read"
let backend_write_event = Path.of_string "/svc/vfs/backend_write"
let backend_stat_event = Path.of_string "/svc/vfs/backend_stat"

let guard_fstype fstype args =
  match args with
  | Value.Str first :: _ -> String.equal first fstype
  | _ -> false

let longest_prefix table path =
  List.find_opt
    (fun (prefix, _) ->
      String.length path >= String.length prefix
      && String.equal (String.sub path 0 (String.length prefix)) prefix)
    table

let route vfs path =
  match longest_prefix vfs.table path with
  | None -> Error (Service.Unresolved (path ^ ": no file system mounted"))
  | Some (prefix, fstype) ->
    let subpath = String.sub path (String.length prefix) (String.length path - String.length prefix) in
    Ok (fstype, subpath)

let insert_mount vfs prefix fstype =
  let without = List.filter (fun (p, _) -> not (String.equal p prefix)) vfs.table in
  vfs.table <-
    List.sort
      (fun (a, _) (b, _) -> Int.compare (String.length b) (String.length a))
      ((prefix, fstype) :: without)

let remove_mount vfs prefix =
  vfs.table <- List.filter (fun (p, _) -> not (String.equal p prefix)) vfs.table

let str_arg name args index =
  match List.nth_opt args index with
  | Some (Value.Str s) -> Ok s
  | Some _ | None ->
    Error (Service.Bad_argument (Printf.sprintf "%s: argument %d must be a string" name index))

let impl_of vfs name =
  let ( let* ) = Result.bind in
  match name with
  | "mount" ->
    fun _ctx args ->
      let* fstype = str_arg "mount" args 0 in
      let* prefix = str_arg "mount" args 1 in
      insert_mount vfs prefix fstype;
      Ok Value.unit
  | "unmount" ->
    fun _ctx args ->
      let* prefix = str_arg "unmount" args 0 in
      remove_mount vfs prefix;
      Ok Value.unit
  | "read" ->
    fun ctx args ->
      let* path = str_arg "read" args 0 in
      let* fstype, subpath = route vfs path in
      ctx.Service.raise_event backend_read_event [ Value.str fstype; Value.str subpath ]
  | "write" ->
    fun ctx args ->
      let* path = str_arg "write" args 0 in
      let* data = str_arg "write" args 1 in
      let* fstype, subpath = route vfs path in
      ctx.Service.raise_event backend_write_event
        [ Value.str fstype; Value.str subpath; Value.str data ]
  | "stat" ->
    fun ctx args ->
      let* path = str_arg "stat" args 0 in
      let* fstype, subpath = route vfs path in
      ctx.Service.raise_event backend_stat_event [ Value.str fstype; Value.str subpath ]
  | other -> Service.fail (Printf.sprintf "vfs: no procedure %s" other)

let iface =
  Iface.make "vfs"
    [
      Iface.proc_sig "mount" 2;
      Iface.proc_sig "unmount" 1;
      Iface.proc_sig "read" 1;
      Iface.proc_sig "write" 2;
      Iface.proc_sig "stat" 1;
    ]

let install kernel ~subject =
  let owner = Subject.principal subject in
  let vfs = { kernel; owner; table = [] } in
  let bottom = Security_class.bottom (Kernel.hierarchy kernel) (Kernel.universe kernel) in
  let admin_only = [ "mount"; "unmount" ] in
  let meta name =
    if List.mem name admin_only then
      Meta.make ~owner
        ~acl:
          (Acl.of_entries
             [ Acl.allow_all (Acl.Individual owner); Acl.allow Acl.Everyone [ Access_mode.List ] ])
        bottom
    else Kernel.default_meta kernel ~owner ()
  in
  let ( let* ) = Result.bind in
  let* () = Kernel.install_iface kernel ~subject ~mount:mount_point ~meta iface (impl_of vfs) in
  (* Backend events: callable by everyone; Extend is granted
     explicitly by the installer (grant_extend). *)
  let event_meta () =
    Meta.make ~owner
      ~acl:
        (Acl.of_entries
           [
             Acl.allow_all (Acl.Individual owner);
             Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Execute ];
           ])
      bottom
  in
  let* () = Kernel.install_event kernel ~subject backend_read_event ~meta:(event_meta ()) in
  let* () = Kernel.install_event kernel ~subject backend_write_event ~meta:(event_meta ()) in
  let* () = Kernel.install_event kernel ~subject backend_stat_event ~meta:(event_meta ()) in
  Ok vfs

let call_proc vfs ~subject name args =
  Kernel.call vfs.kernel ~subject ~caller:"vfs-client" (Path.child mount_point name) args

let mount_fs vfs ~subject ~fstype ~prefix =
  Result.map
    (fun (_ : Value.t) -> ())
    (call_proc vfs ~subject "mount" [ Value.str fstype; Value.str prefix ])

let unmount_fs vfs ~subject ~prefix =
  Result.map (fun (_ : Value.t) -> ()) (call_proc vfs ~subject "unmount" [ Value.str prefix ])

let mounts vfs = vfs.table

let read vfs ~subject path =
  match call_proc vfs ~subject "read" [ Value.str path ] with
  | Ok (Value.Str contents) -> Ok contents
  | Ok other ->
    Error (Service.Bad_argument (Format.asprintf "read returned %a" Value.pp other))
  | Error e -> Error e

let write vfs ~subject path data =
  Result.map
    (fun (_ : Value.t) -> ())
    (call_proc vfs ~subject "write" [ Value.str path; Value.str data ])

let stat vfs ~subject path =
  match call_proc vfs ~subject "stat" [ Value.str path ] with
  | Ok (Value.Int size) -> Ok size
  | Ok other ->
    Error (Service.Bad_argument (Format.asprintf "stat returned %a" Value.pp other))
  | Error e -> Error e

let grant_extend vfs ~subject who =
  let resolver = Kernel.resolver vfs.kernel in
  let events = [ backend_read_event; backend_write_event; backend_stat_event ] in
  let add_extend event acc =
    match acc with
    | Error _ -> acc
    | Ok () -> (
      match Namespace.find (Kernel.namespace vfs.kernel) event with
      | Error error ->
        Error (Service.Unresolved (Format.asprintf "%a" Namespace.pp_error error))
      | Ok node -> (
        let meta = Namespace.meta node in
        let acl = Acl.add (Acl.allow who [ Access_mode.Extend ]) meta.Meta.acl in
        match Resolver.set_acl resolver ~subject event acl with
        | Ok () -> Ok ()
        | Error denial -> Error (Kernel.error_of_denial denial)))
  in
  List.fold_left (fun acc event -> add_extend event acc) (Ok ()) events
