(** Deterministic pseudo-random numbers (splitmix64).

    Benchmarks and generated workloads must be reproducible run to
    run, so everything randomized in this repository draws from this
    seeded generator rather than [Stdlib.Random]. *)

type t

val create : seed:int -> t

val next : t -> int64
(** The next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val choose : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val choose_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val subset : t -> density:float -> 'a list -> 'a list
(** Keep each element independently with probability [density]. *)

val split : t -> t
(** A statistically independent generator (for parallel streams). *)
