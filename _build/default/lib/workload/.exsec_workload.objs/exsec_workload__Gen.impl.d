lib/workload/gen.ml: Access_mode Acl Array Category Exsec_core Level List Meta Namespace Path Principal Printf Prng Security_class
