lib/workload/prng.mli:
