lib/workload/scenario.ml: Access_mode Acl Category Exsec_core Exsec_extsys Exsec_services Kernel Level List Memfs Principal Security_class Subject
