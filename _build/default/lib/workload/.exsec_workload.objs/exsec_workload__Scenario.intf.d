lib/workload/scenario.mli: Category Exsec_core Exsec_extsys Exsec_services Kernel Level Memfs Subject
