lib/workload/gen.mli: Access_mode Acl Category Exsec_core Level Namespace Path Principal Prng Security_class
