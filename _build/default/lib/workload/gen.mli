(** Random-but-reproducible generators for benchmark workloads and
    property tests: principal databases, ACLs, security classes and
    populated name spaces of controlled shape. *)

open Exsec_core

val principal_db :
  Prng.t -> individuals:int -> groups:int -> density:float ->
  Principal.Db.t * Principal.individual list * Principal.group list
(** A database with the given counts; each individual joins each
    group independently with probability [density]. *)

val acl :
  Prng.t ->
  individuals:Principal.individual list ->
  groups:Principal.group list ->
  length:int ->
  deny_fraction:float ->
  Acl.t
(** [length] entries over random principals; each entry is negative
    with probability [deny_fraction] and carries one to three random
    modes. *)

val acl_with_subject_at :
  Prng.t ->
  subject:Principal.individual ->
  mode:Access_mode.t ->
  filler_individuals:Principal.individual list ->
  position:int ->
  length:int ->
  Acl.t
(** An ACL of [length] entries none of which match [subject], except
    one allow entry for [subject]/[mode] at index [position] — for
    measuring evaluation cost against hit depth (bench F1).
    @raise Invalid_argument unless [0 <= position < length]. *)

val security_class :
  Prng.t -> Level.hierarchy -> Category.universe -> Security_class.t
(** Uniform level, each category kept with probability 1/2. *)

val lattice : levels:int -> categories:int -> Level.hierarchy * Category.universe
(** ["L0" > "L1" > ...] and ["c0"; "c1"; ...]. *)

val populate_tree :
  'a Namespace.t ->
  owner:Principal.individual ->
  klass:Security_class.t ->
  depth:int ->
  fanout:int ->
  leaf:(Path.t -> 'a) ->
  Path.t list
(** Grow a complete [fanout]-ary tree of directories [depth] levels
    deep under the root, with one leaf under each deepest directory;
    world-listable ACLs.  Returns the leaf paths. *)

val chain :
  'a Namespace.t ->
  owner:Principal.individual ->
  klass:Security_class.t ->
  depth:int ->
  leaf:'a ->
  Path.t
(** A single path of [depth] nested directories ending in one leaf
    (for resolution-vs-depth measurements, bench F2); returns the
    leaf path. *)
