type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea & Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit immediate int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let choose t items =
  if Array.length items = 0 then invalid_arg "Prng.choose: empty array";
  items.(int t (Array.length items))

let choose_list t items = choose t (Array.of_list items)

let shuffle t items =
  for i = Array.length items - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = items.(i) in
    items.(i) <- items.(j);
    items.(j) <- tmp
  done

let subset t ~density items = List.filter (fun _ -> float t < density) items
let split t = { state = next t }
