open Exsec_core

let principal_db rng ~individuals ~groups ~density =
  let db = Principal.Db.create () in
  let inds =
    List.init individuals (fun i -> Principal.individual (Printf.sprintf "user%03d" i))
  in
  let grps = List.init groups (fun i -> Principal.group (Printf.sprintf "group%02d" i)) in
  List.iter (Principal.Db.add_individual db) inds;
  List.iter (Principal.Db.add_group db) grps;
  List.iter
    (fun grp ->
      List.iter
        (fun ind ->
          if Prng.float rng < density then Principal.Db.add_member db grp (Principal.Ind ind))
        inds)
    grps;
  db, inds, grps

let random_modes rng =
  let all = Array.of_list Access_mode.all in
  List.init (1 + Prng.int rng 3) (fun _ -> Prng.choose rng all)

let random_who rng ~individuals ~groups =
  match Prng.int rng 10 with
  | 0 -> Acl.Everyone
  | 1 | 2 | 3 when groups <> [] -> Acl.Group (Prng.choose_list rng groups)
  | _ -> Acl.Individual (Prng.choose_list rng individuals)

let acl rng ~individuals ~groups ~length ~deny_fraction =
  if individuals = [] then invalid_arg "Gen.acl: need at least one individual";
  Acl.of_entries
    (List.init length (fun _ ->
         let who = random_who rng ~individuals ~groups in
         let sign = if Prng.float rng < deny_fraction then Acl.Deny else Acl.Allow in
         Acl.entry who sign (random_modes rng)))

let acl_with_subject_at rng ~subject ~mode ~filler_individuals ~position ~length =
  if position < 0 || position >= length then
    invalid_arg "Gen.acl_with_subject_at: position out of range";
  let fillers =
    List.filter
      (fun ind -> not (Principal.equal_individual ind subject))
      filler_individuals
  in
  if fillers = [] then invalid_arg "Gen.acl_with_subject_at: no distinct fillers";
  Acl.of_entries
    (List.init length (fun i ->
         if i = position then Acl.allow (Acl.Individual subject) [ mode ]
         else Acl.allow (Acl.Individual (Prng.choose_list rng fillers)) (random_modes rng)))

let lattice ~levels ~categories =
  let hierarchy = Level.hierarchy (List.init levels (Printf.sprintf "L%d")) in
  let universe = Category.universe (List.init categories (Printf.sprintf "c%d")) in
  hierarchy, universe

let security_class rng hierarchy universe =
  let level_names = Array.of_list (Level.names hierarchy) in
  let level = Level.of_name_exn hierarchy (Prng.choose rng level_names) in
  let cats =
    Prng.subset rng ~density:0.5 (Category.universe_names universe)
    |> Category.of_names universe
  in
  Security_class.make level cats

let listable_meta ~owner ~klass =
  Meta.make ~owner
    ~acl:
      (Acl.of_entries
         [
           Acl.allow_all (Acl.Individual owner);
           Acl.allow Acl.Everyone
             [ Access_mode.List; Access_mode.Read; Access_mode.Execute ];
         ])
    klass

let populate_tree ns ~owner ~klass ~depth ~fanout ~leaf =
  let leaves = ref [] in
  let rec grow parent level =
    if level = depth then begin
      let path = Path.child parent "leaf" in
      (match Namespace.add_leaf ns path ~meta:(listable_meta ~owner ~klass) (leaf path) with
      | Ok _ -> leaves := path :: !leaves
      | Error _ -> ())
    end
    else
      for i = 0 to fanout - 1 do
        let path = Path.child parent (Printf.sprintf "n%d" i) in
        match Namespace.add_dir ns path ~meta:(listable_meta ~owner ~klass) with
        | Ok _ -> grow path (level + 1)
        | Error _ -> ()
      done
  in
  grow Path.root 0;
  List.rev !leaves

let chain ns ~owner ~klass ~depth ~leaf =
  let rec dig parent level =
    if level = depth then begin
      let path = Path.child parent "leaf" in
      (match Namespace.add_leaf ns path ~meta:(listable_meta ~owner ~klass) leaf with
      | Ok _ | Error _ -> ());
      path
    end
    else begin
      let path = Path.child parent (Printf.sprintf "d%d" level) in
      (match Namespace.add_dir ns path ~meta:(listable_meta ~owner ~klass) with
      | Ok _ | Error _ -> ());
      dig path (level + 1)
    end
  in
  dig Path.root 0
