(** VINO's protection as the paper reports it (section 1.2, citing a
    personal communication): the system "distinguishes between
    regular and privileged users, and uses dynamic privilege checks
    before accessing sensitive data".

    Modelled as one global privileged-user set plus a per-object
    sensitivity flag: privileged users pass every check; regular
    users are refused on sensitive objects and admitted elsewhere.
    One bit of subject state buys exactly one policy boundary, so
    multi-level and compartment intents are out of reach. *)

include Model.MODEL
