(** SPIN's domain mechanism (paper, section 1.2): system services are
    grouped into domains; an extension is linked against a set of
    domains and can reach exactly the services inside them — {e both}
    to call and to extend, with no finer distinction: "an extension
    can either call on and extend all interfaces in all domains it
    has been linked against, or access control is ad hoc".

    Domains say nothing about file objects, principals, or security
    classes, so only service-reachability intents are expressible,
    and the call/extend boundary of R2 is structurally lost. *)

include Model.MODEL
