(** Unix (4.4BSD) permission bits: one owner, one group, one "other"
    tier, each with read/write/execute — the paper calls this
    "primitive and, barely, [offering] adequate security to protect
    file access" (sections 1.2, 2).

    No negative entries, a single group per object, no append-only
    distinction ([Append] and [Write] both map to the [w] bit),
    [Call] and [Extend] both map to the [x] bit, and no mandatory
    layer.  Encoders may only use the groups already present on the
    requirement's subjects. *)

include Model.MODEL
