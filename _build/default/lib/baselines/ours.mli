(** The paper's model, adapted to the abstract policy world of
    {!World} so it can be scored by the same harness as the baselines.

    Encoding maps origins to the three trust levels of the paper's
    example ([local > organization > outside]), departments to
    categories, and intents to ACLs; decisions run through the real
    {!Exsec_core.Reference_monitor}.  For purely discretionary
    intents the deployment uses a one-point lattice (a single level,
    no categories), under which mandatory checks are trivially
    satisfied — labelling is a per-deployment choice in the paper's
    model. *)

include Model.MODEL
