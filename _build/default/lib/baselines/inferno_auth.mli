(** Inferno, as the paper reports it (section 1.2): "Inferno uses
    encryption for the mutual authentication of communicating parties
    and their messages" — i.e., it answers {e who} is talking, but
    "no security model and specifically no access control model is
    discussed in the publicly available literature".

    Modelled accordingly: a set of mutually authenticated parties.
    Authenticated subjects pass (identity established, nothing else
    checked); unauthenticated ones are refused outright.
    Authorization intents therefore have no encoding at all — every
    requirement in the suite is inexpressible, which is precisely the
    paper's point: authentication is necessary but is not access
    control. *)

include Model.MODEL
