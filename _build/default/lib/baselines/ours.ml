open Exsec_core

let name = "this-paper"
let description = "DAC ACLs + MAC lattice + execute/extend modes (the paper's model)"

type lattice = {
  hierarchy : Level.hierarchy;
  universe : Category.universe;
  class_of : World.origin -> string list -> Security_class.t;
}

type config = {
  db : Principal.Db.t;
  monitor : Reference_monitor.t;
  lattice : lattice;
  meta_of : World.object_ -> Meta.t;
}

let multi_level () =
  let hierarchy = Level.hierarchy [ "local"; "organization"; "outside" ] in
  let universe = Category.universe [ "d1"; "d2" ] in
  let class_of origin depts =
    let level_name =
      match origin with
      | World.Local -> "local"
      | World.Org -> "organization"
      | World.Outside -> "outside"
    in
    Security_class.make (Level.of_name_exn hierarchy level_name)
      (Category.of_names universe depts)
  in
  { hierarchy; universe; class_of }

(* A one-point lattice: every class identical, MAC trivially grants. *)
let one_point () =
  let hierarchy = Level.hierarchy [ "sys" ] in
  let universe = Category.universe [] in
  let class_of _origin _depts =
    Security_class.make (Level.top hierarchy) (Category.empty universe)
  in
  { hierarchy; universe; class_of }

let db_of_requirement (requirement : World.requirement) =
  let db = Principal.Db.create () in
  List.iter
    (fun (case : World.case) ->
      let s = case.World.c_subject in
      let ind = Principal.individual s.World.s_name in
      Principal.Db.add_individual db ind;
      List.iter
        (fun grp -> Principal.Db.add_member db (Principal.group grp) (Principal.Ind ind))
        s.World.s_groups)
    requirement.World.r_cases;
  db

let ind = Principal.individual
let grp = Principal.group

let open_modes =
  [
    Access_mode.Read;
    Access_mode.Write;
    Access_mode.Write_append;
    Access_mode.List;
    Access_mode.Execute;
    Access_mode.Extend;
  ]

let world_open owner =
  Acl.of_entries
    [ Acl.allow_all (Acl.Individual (ind owner)); Acl.allow Acl.Everyone open_modes ]

(* ACL chosen per intent; [None] means "everything open" (the intent
   is enforced by the lattice). *)
let acl_for (intent : World.intent) (obj : World.object_) =
  match intent with
  | World.Restrict_call { service; allowed } when String.equal service obj.World.o_path ->
    Some
      (Acl.of_entries
         (Acl.allow_all (Acl.Individual (ind obj.World.o_owner))
         :: Acl.allow Acl.Everyone [ Access_mode.List ]
         :: List.map (fun who -> Acl.allow (Acl.Individual (ind who)) [ Access_mode.Execute ]) allowed))
  | World.Restrict_extend { service; may_call; may_extend }
    when String.equal service obj.World.o_path ->
    Some
      (Acl.of_entries
         (Acl.allow_all (Acl.Individual (ind obj.World.o_owner))
         :: Acl.allow Acl.Everyone [ Access_mode.List ]
         :: (List.map (fun who -> Acl.allow (Acl.Individual (ind who)) [ Access_mode.Execute ]) may_call
            @ List.map (fun who -> Acl.allow (Acl.Individual (ind who)) [ Access_mode.Extend ]) may_extend)))
  | World.Group_except { group; except; file; members = _ }
    when String.equal file obj.World.o_path ->
    Some
      (Acl.of_entries
         [
           Acl.allow_all (Acl.Individual (ind obj.World.o_owner));
           Acl.allow (Acl.Group (grp group)) [ Access_mode.Read ];
           Acl.deny (Acl.Individual (ind except)) [ Access_mode.Read ];
         ])
  | World.Multi_group { groups; file } when String.equal file obj.World.o_path ->
    Some
      (Acl.of_entries
         (Acl.allow_all (Acl.Individual (ind obj.World.o_owner))
         :: List.map (fun (g, _) -> Acl.allow (Acl.Group (grp g)) [ Access_mode.Read ]) groups))
  | World.Per_file { readable = readable_path, readers; private_; dir = _ } ->
    if String.equal obj.World.o_path readable_path then
      Some
        (Acl.of_entries
           (Acl.allow_all (Acl.Individual (ind obj.World.o_owner))
           :: List.map (fun who -> Acl.allow (Acl.Individual (ind who)) [ Access_mode.Read ]) readers))
    else if String.equal obj.World.o_path private_ then
      Some (Acl.owner_default (ind obj.World.o_owner))
    else None
  | World.Append_only_log ->
    Some
      (Acl.of_entries
         [
           Acl.allow_all (Acl.Individual (ind obj.World.o_owner));
           Acl.allow Acl.Everyone
             [ Access_mode.Read; Access_mode.Write; Access_mode.Write_append; Access_mode.List ];
         ])
  | World.Restrict_call _ | World.Restrict_extend _ | World.Group_except _
  | World.Multi_group _
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept | World.No_leak
  | World.Static_pin | World.Class_dispatch ->
    None

let uses_lattice = function
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept | World.No_leak
  | World.Static_pin | World.Class_dispatch | World.Append_only_log ->
    true
  | World.Restrict_call _ | World.Restrict_extend _ | World.Group_except _
  | World.Multi_group _ | World.Per_file _ ->
    false

let encode (requirement : World.requirement) =
  let db = db_of_requirement requirement in
  let lattice =
    if uses_lattice requirement.World.r_intent then multi_level () else one_point ()
  in
  let monitor = Reference_monitor.create db in
  let meta_of (obj : World.object_) =
    let acl =
      match acl_for requirement.World.r_intent obj with
      | Some acl -> acl
      | None -> world_open obj.World.o_owner
    in
    let klass = lattice.class_of obj.World.o_origin obj.World.o_depts in
    Meta.make ~owner:(ind obj.World.o_owner) ~acl klass
  in
  Some { db; monitor; lattice; meta_of }

let mode_of_op = function
  | World.Read -> Access_mode.Read
  | World.Write -> Access_mode.Write
  | World.Append -> Access_mode.Write_append
  | World.Call -> Access_mode.Execute
  | World.Extend -> Access_mode.Extend

let subject_of config (s : World.subject) =
  let clearance = config.lattice.class_of s.World.s_origin s.World.s_depts in
  let base = Subject.make (ind s.World.s_name) clearance in
  match s.World.s_ext with
  | None -> base
  | Some ext ->
    Subject.with_ceiling base
      (config.lattice.class_of ext.World.e_origin ext.World.e_depts)

let decide config (s : World.subject) (obj : World.object_) op =
  let subject = subject_of config s in
  let meta = config.meta_of obj in
  Decision.is_granted
    (Reference_monitor.decide config.monitor ~subject ~meta ~mode:(mode_of_op op))
