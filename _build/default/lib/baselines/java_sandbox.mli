(** The Java (JDK 1.0/1.1) security model, as the paper describes it
    (section 1.2): a {e binary} trust decision — code from the local
    file system is fully trusted, remote code is sandboxed — enforced
    by {e three} cooperating prongs (byte-code verifier, class loader,
    security manager) rather than one central facility.

    Two deliberate properties drive the experiments:

    - trust attaches to {e code origin} only, so a trusted-origin
      extension run by an untrusted principal still gets everything
      (T3/R10), and principals are indistinguishable (R1, R3, R6);
    - enforcement is the {e conjunction} of three prongs, each of
      which covers only some attack classes; {!decide_with_faults}
      lets the fault-injection experiment (T4) knock out prongs
      individually, modelling the "continuous string of security
      breaches". *)

include Model.MODEL

(** {1 Three-prong fault injection (experiment T4)} *)

type prong =
  | Verifier  (** byte-code verification: blocks forged references *)
  | Class_loader  (** name-space separation: blocks class spoofing *)
  | Security_manager  (** resource checks: blocks file/net access *)

val prongs : prong list

type attack = {
  a_name : string;
  a_blocked_by : prong;
      (** in the three-prong design, exactly one prong stands between
          this attack class and a breach *)
}

val attacks : attack list
(** Representative attack classes, one or more per prong (drawn from
    the incidents catalogued by Dean, Felten & Wallach 1996 and
    McGraw & Felten 1997, which the paper cites). *)

val breached : faulty:prong list -> attack -> bool
(** Does the attack succeed when the listed prongs have a bug? *)

val breach_fraction : faulty:prong list -> float
(** Fraction of {!attacks} that succeed. *)
