module type MODEL = sig
  val name : string
  val description : string

  type config

  val encode : World.requirement -> config option
  val decide : config -> World.subject -> World.object_ -> World.operation -> bool
end

type outcome =
  | Inexpressible
  | Enforced
  | Misenforced of { failed : int; total : int }

let pp_outcome ppf = function
  | Inexpressible -> Format.pp_print_string ppf "inexpressible"
  | Enforced -> Format.pp_print_string ppf "enforced"
  | Misenforced { failed; total } ->
    Format.fprintf ppf "mis-enforced (%d/%d cases wrong)" failed total

let outcome_symbol = function
  | Inexpressible -> "no"
  | Enforced -> "yes"
  | Misenforced { failed; total } -> Printf.sprintf "%d/%d wrong" failed total

type failed_case = {
  case : World.case;
  got : bool;
}

let evaluate_verbose (module M : MODEL) (requirement : World.requirement) =
  match M.encode requirement with
  | None -> Inexpressible, []
  | Some config ->
    let failures =
      List.filter_map
        (fun (case : World.case) ->
          let got = M.decide config case.World.c_subject case.World.c_object case.World.c_op in
          if Bool.equal got case.World.c_expect then None else Some { case; got })
        requirement.World.r_cases
    in
    let total = List.length requirement.World.r_cases in
    (match failures with
    | [] -> Enforced, []
    | _ -> Misenforced { failed = List.length failures; total }, failures)

let evaluate model requirement = fst (evaluate_verbose model requirement)
