(** The common shape of every protection model under comparison, and
    the harness that scores a model against a requirement. *)

module type MODEL = sig
  val name : string
  (** e.g. ["unix"], ["java-sandbox"]. *)

  val description : string

  type config

  val encode : World.requirement -> config option
  (** Translate the requirement's {e intent} into this model's
      configuration.  [None] means the mechanism has no way to state
      the policy at all.  Encoders must work from the intent, never
      from the expected case outcomes — a [Some] config that then
      mis-decides cases is exactly the measured result we want. *)

  val decide : config -> World.subject -> World.object_ -> World.operation -> bool
end

type outcome =
  | Inexpressible  (** the encoder returned [None] *)
  | Enforced  (** every case decided as expected *)
  | Misenforced of { failed : int; total : int }
      (** configured, but some cases decided wrongly *)

val pp_outcome : Format.formatter -> outcome -> unit

val outcome_symbol : outcome -> string
(** Compact table cell: ["yes"], ["no"], or ["k/n wrong"]. *)

val evaluate : (module MODEL) -> World.requirement -> outcome

type failed_case = {
  case : World.case;
  got : bool;
}

val evaluate_verbose :
  (module MODEL) -> World.requirement -> outcome * failed_case list
(** Like {!evaluate} but also returns the mis-decided cases. *)
