let name = "java-sandbox"
let description = "JDK 1.x binary trust: local code trusted, remote code sandboxed"

type config = {
  safe_services : string list;
      (** services the sandbox lets untrusted code call (the applet
          API surface) *)
}

(* Trust attaches to the *code*: when the subject acts through an
   extension, the extension's origin decides; otherwise the
   principal's own code origin. *)
let code_origin (s : World.subject) =
  match s.World.s_ext with
  | Some ext -> ext.World.e_origin
  | None -> s.World.s_origin

let trusted s =
  match code_origin s with
  | World.Local -> true
  | World.Org | World.Outside -> false

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call _ | World.Restrict_extend _ ->
    (* The guarded service is sensitive: keep it off the applet API. *)
    Some { safe_services = [] }
  | World.Class_dispatch ->
    (* There is no class-indexed dispatch; the sandbox exposes the
       handlers it exposes. *)
    Some { safe_services = [ "svc/handler@local"; "svc/handler@org" ] }
  | World.Group_except _ | World.Multi_group _ | World.Per_file _
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept | World.No_leak
  | World.Static_pin | World.Append_only_log ->
    Some { safe_services = [] }

let decide config (s : World.subject) (obj : World.object_) (op : World.operation) =
  if trusted s then true
  else (
    match obj.World.o_kind, op with
    | World.Service, World.Call -> List.mem obj.World.o_path config.safe_services
    | World.Service, (World.Read | World.Write | World.Append | World.Extend)
    | World.File, _ ->
      false)

(* {1 Three-prong fault injection} *)

type prong =
  | Verifier
  | Class_loader
  | Security_manager

let prongs = [ Verifier; Class_loader; Security_manager ]

type attack = {
  a_name : string;
  a_blocked_by : prong;
}

let attacks =
  [
    { a_name = "forged pointer via unverified bytecode"; a_blocked_by = Verifier };
    { a_name = "illegal cast to privileged class"; a_blocked_by = Verifier };
    { a_name = "stack overflow into checked frame"; a_blocked_by = Verifier };
    { a_name = "class spoofing across loaders"; a_blocked_by = Class_loader };
    { a_name = "shadowing a system class"; a_blocked_by = Class_loader };
    { a_name = "local file read from applet"; a_blocked_by = Security_manager };
    { a_name = "socket to third host"; a_blocked_by = Security_manager };
    { a_name = "thread kill outside group"; a_blocked_by = Security_manager };
  ]

let breached ~faulty attack = List.mem attack.a_blocked_by faulty

let breach_fraction ~faulty =
  let hit = List.filter (breached ~faulty) attacks in
  float_of_int (List.length hit) /. float_of_int (List.length attacks)
