(** The abstract policy world the expressiveness experiment (T3) is
    phrased in.

    Section 1.2 of the paper argues that the protection mechanisms of
    Unix, AFS, Windows NT, the Java sandbox, SPIN domains and VINO
    cannot express the policies extensible systems need.  To compare
    those mechanisms {e and} the paper's model on equal footing, each
    policy {e requirement} is stated here abstractly: an {!intent}
    (what the policy is supposed to achieve) plus concrete {!case}s
    (subject, object, operation, expected decision).  Every protection
    model translates the intent into its own configuration; the
    harness then replays the cases and scores the model
    ({!Model.evaluate}). *)

type origin =
  | Local  (** code/data from the local machine — most trusted *)
  | Org  (** from within the organization *)
  | Outside  (** from beyond the organization — least trusted *)

val origin_rank : origin -> int
(** [2] for [Local] down to [0] for [Outside]. *)

val pp_origin : Format.formatter -> origin -> unit

type ext = {
  e_name : string;
  e_origin : origin;  (** where the extension's code came from *)
  e_depts : string list;
}
(** An extension a subject may be running through; its attributes cap
    the subject's authority in models that support static classes. *)

type subject = {
  s_name : string;
  s_origin : origin;
  s_depts : string list;  (** departments / compartments *)
  s_privileged : bool;  (** VINO-style privilege bit *)
  s_groups : string list;  (** named groups the principal belongs to *)
  s_ext : ext option;  (** running inside this extension, if any *)
}

type kind =
  | File
  | Service

type object_ = {
  o_path : string;  (** ["dir/name"]; the directory component matters
                        to models with directory-granularity ACLs *)
  o_owner : string;
  o_origin : origin;  (** the object's classification level *)
  o_depts : string list;
  o_kind : kind;
}

type operation =
  | Read
  | Write
  | Append
  | Call  (** invoke a service *)
  | Extend  (** specialize a service *)

val pp_operation : Format.formatter -> operation -> unit

type case = {
  c_subject : subject;
  c_object : object_;
  c_op : operation;
  c_expect : bool;  (** should a correct enforcement grant this? *)
}

(** What the policy is meant to achieve — the input every model's
    encoder translates. *)
type intent =
  | Restrict_call of { service : string; allowed : string list }
      (** only the listed principals may call [service] *)
  | Restrict_extend of { service : string; may_call : string list; may_extend : string list }
      (** calling and extending [service] are distinct rights *)
  | Group_except of { group : string; members : string list; except : string; file : string }
      (** the group may read [file] — except one member *)
  | Multi_group of { groups : (string * string list) list; file : string }
      (** members of any listed group may read [file] *)
  | Per_file of { dir : string; readable : string * string list; private_ : string }
      (** within one directory, [readable] is open to the listed
          principals while [private_] stays owner-only *)
  | Level_hierarchy
      (** local applets read all files, org applets org-and-below,
          outside applets none (paper, section 2) *)
  | Dept_isolation
      (** same level, different departments: no cross access (paper,
          section 2.2) *)
  | Level_and_dept
      (** the paper's full worked example: levels x department
          subsets *)
  | No_leak
      (** information-flow: a subject must not be able to pass
          high data down, even via objects its DAC rights allow *)
  | Static_pin
      (** an outside-origin extension run by a local principal gets
          only outside authority *)
  | Class_dispatch
      (** an org-level caller of an extended service must reach the
          org-class handler, never the local-class one *)
  | Append_only_log
      (** everyone appends to the log; only high subjects read it;
          nobody below the log's level truncates it *)

type requirement = {
  r_id : string;  (** e.g. ["R1"] *)
  r_title : string;
  r_paper : string;  (** the paper section motivating it *)
  r_intent : intent;
  r_cases : case list;
}

val subject :
  ?origin:origin -> ?depts:string list -> ?privileged:bool -> ?groups:string list ->
  ?ext:ext -> string -> subject
(** Defaults: [Local] origin, no departments, unprivileged, no
    groups, no extension. *)

val file : ?owner:string -> ?origin:origin -> ?depts:string list -> string -> object_
(** Defaults: owner ["root"], [Local] origin, no departments. *)

val service : ?owner:string -> ?origin:origin -> ?depts:string list -> string -> object_

val case : subject -> object_ -> operation -> bool -> case

val dir_of : object_ -> string
(** The directory component of the object's path (["" ] when the path
    has no slash). *)
