open World

let alice = subject ~origin:Local ~depts:[ "d1" ] ~groups:[ "staff"; "eng" ] "alice"
let bob = subject ~origin:Local ~depts:[ "d2" ] ~groups:[ "staff"; "qa" ] "bob"
let carol = subject ~origin:Org ~depts:[ "d1" ] ~groups:[ "staff" ] "carol"
let dave = subject ~origin:Org ~depts:[ "d2" ] "dave"
let both_depts = subject ~origin:Org ~depts:[ "d1"; "d2" ] "merged"
let eve = subject ~origin:Outside "eve"
let mallory = subject ~origin:Local ~groups:[ "staff" ] "mallory"

(* R1: only designated principals may call a sensitive service. *)
let r1 =
  let admin_svc = service ~owner:"alice" "svc/fs_admin" in
  {
    r_id = "R1";
    r_title = "execute mode: only designated principals call a service";
    r_paper = "section 2.1";
    r_intent = Restrict_call { service = "svc/fs_admin"; allowed = [ "alice" ] };
    r_cases =
      [
        case alice admin_svc Call true;
        case bob admin_svc Call false;
        case carol admin_svc Call false;
        case eve admin_svc Call false;
      ];
  }

(* R2: extending a service is a different right from calling it. *)
let r2 =
  let backend = service ~owner:"alice" "svc/vfs_backend" in
  {
    r_id = "R2";
    r_title = "extend mode distinct from execute mode";
    r_paper = "sections 1.1, 2.1";
    r_intent =
      Restrict_extend
        {
          service = "svc/vfs_backend";
          may_call = [ "alice"; "bob"; "carol" ];
          may_extend = [ "alice" ];
        };
    r_cases =
      [
        case alice backend Call true;
        case alice backend Extend true;
        case bob backend Call true;
        case bob backend Extend false;
        case carol backend Call true;
        case carol backend Extend false;
      ];
  }

(* R3: negative ACL entries — the whole group except one member. *)
let r3 =
  let report = file ~owner:"alice" "shared/report" in
  {
    r_id = "R3";
    r_title = "negative entries: a group minus one individual";
    r_paper = "section 2.1";
    r_intent =
      Group_except
        {
          group = "staff";
          members = [ "alice"; "bob"; "carol"; "mallory" ];
          except = "mallory";
          file = "shared/report";
        };
    r_cases =
      [
        case alice report Read true;
        case bob report Read true;
        case carol report Read true;
        case mallory report Read false;
        case dave report Read false;
      ];
  }

(* R4: more than one group on one object. *)
let r4 =
  let plan = file ~owner:"alice" "proj/plan" in
  {
    r_id = "R4";
    r_title = "several group entries on one object";
    r_paper = "section 2.1";
    r_intent =
      Multi_group
        { groups = [ "eng", [ "alice" ]; "qa", [ "bob" ] ]; file = "proj/plan" };
    r_cases =
      [
        case alice plan Read true;
        case bob plan Read true;
        case carol plan Read false;
        case dave plan Read false;
      ];
  }

(* R5: per-file (not per-directory) granularity. *)
let r5 =
  let public = file ~owner:"alice" "home/alice/public" in
  let secret = file ~owner:"alice" "home/alice/secret" in
  {
    r_id = "R5";
    r_title = "per-file granularity within one directory";
    r_paper = "sections 1.2, 2.3 (AFS directory granularity)";
    r_intent =
      Per_file
        {
          dir = "home/alice";
          readable = "home/alice/public", [ "bob" ];
          private_ = "home/alice/secret";
        };
    r_cases =
      [
        case alice public Read true;
        case alice secret Read true;
        case bob public Read true;
        case bob secret Read false;
      ];
  }

(* R6: linearly ordered trust levels. *)
let r6 =
  let f_local = file ~origin:Local "data/local" in
  let f_org = file ~origin:Org "data/org" in
  let f_out = file ~origin:Outside "data/outside" in
  {
    r_id = "R6";
    r_title = "hierarchical trust levels govern read access";
    r_paper = "section 2 (applet example), 2.2";
    r_intent = Level_hierarchy;
    r_cases =
      [
        case alice f_local Read true;
        case alice f_org Read true;
        case carol f_local Read false;
        case carol f_org Read true;
        case carol f_out Read true;
        case eve f_org Read false;
        case eve f_out Read true;
      ];
  }

(* R7: categories separate compartments within one level. *)
let r7 =
  let f_d1 = file ~origin:Org ~depts:[ "d1" ] "org/d1-data" in
  let f_d2 = file ~origin:Org ~depts:[ "d2" ] "org/d2-data" in
  {
    r_id = "R7";
    r_title = "categories isolate departments within a level";
    r_paper = "section 2.2";
    r_intent = Dept_isolation;
    r_cases =
      [
        case carol f_d1 Read true;
        case carol f_d2 Read false;
        case dave f_d2 Read true;
        case dave f_d1 Read false;
        case both_depts f_d1 Read true;
        case both_depts f_d2 Read true;
      ];
  }

(* R8: the paper's full worked example — levels x categories. *)
let r8 =
  let f_d1 = file ~origin:Org ~depts:[ "d1" ] "org/d1-data" in
  let f_d2 = file ~origin:Org ~depts:[ "d2" ] "org/d2-data" in
  let f_local = file ~origin:Local ~depts:[ "d1"; "d2" ] "local/all" in
  let local_user = subject ~origin:Local ~depts:[ "d1"; "d2" ] "local-user" in
  {
    r_id = "R8";
    r_title = "levels and categories combined (the paper's applet example)";
    r_paper = "section 2.2";
    r_intent = Level_and_dept;
    r_cases =
      [
        case local_user f_local Read true;
        case local_user f_d1 Read true;
        case local_user f_d2 Read true;
        case carol f_d1 Read true;
        case carol f_d2 Read false;
        case carol f_local Read false;
        case both_depts f_d1 Read true;
        case both_depts f_d2 Read true;
        case eve f_d1 Read false;
        case eve f_local Read false;
      ];
  }

(* R9: mandatory control beats discretionary leaks. *)
let r9 =
  let low = file ~owner:"carol" ~origin:Outside "drop/box" in
  let same = file ~owner:"carol" ~origin:Org ~depts:[ "d1" ] "org/carol-notes" in
  let high_log = file ~origin:Local ~depts:[ "d1" ] "local/log" in
  {
    r_id = "R9";
    r_title = "no write-down even when the owner's ACL would allow it";
    r_paper = "section 2.2 (users can not circumvent the basic security)";
    r_intent = No_leak;
    r_cases =
      [
        case carol low Write false;  (* write-down: denied despite ownership *)
        case carol same Write true;
        case carol high_log Append true;  (* information may flow up *)
        case carol high_log Read false;  (* but not back down *)
      ];
  }

(* R10: statically assigned extension classes. *)
let r10 =
  let evil = { e_name = "evil"; e_origin = Outside; e_depts = [] } in
  let benign = { e_name = "benign"; e_origin = Local; e_depts = [ "d1" ] } in
  let f_local = file ~origin:Local ~depts:[ "d1" ] "local/data" in
  let alice_in_evil = { alice with s_ext = Some evil } in
  let alice_in_benign = { alice with s_ext = Some benign } in
  {
    r_id = "R10";
    r_title = "a pinned extension cannot launder its caller's authority";
    r_paper = "section 2.2 (statically assigned security classes)";
    r_intent = Static_pin;
    r_cases =
      [
        case alice f_local Read true;
        case alice_in_benign f_local Read true;
        case alice_in_evil f_local Read false;
        case { eve with s_ext = Some benign } f_local Read false;
      ];
  }

(* R11: handler selection by caller class. *)
let r11 =
  let h_local = service ~origin:Local "svc/handler@local" in
  let h_org = service ~origin:Org "svc/handler@org" in
  {
    r_id = "R11";
    r_title = "the right extension is selected by the caller's class";
    r_paper = "section 2.2";
    r_intent = Class_dispatch;
    r_cases =
      [
        case alice h_local Call true;
        case carol h_local Call false;
        case carol h_org Call true;
        case eve h_org Call false;
      ];
  }

(* R12: the append-only system log. *)
let r12 =
  (* The log carries every category so that any subject's categories
     are a subset of its own — everyone may append; only a
     full-clearance auditor dominates it and may read. *)
  let log = file ~origin:Local ~depts:[ "d1"; "d2" ] "var/log" in
  let auditor = subject ~origin:Local ~depts:[ "d1"; "d2" ] "auditor" in
  {
    r_id = "R12";
    r_title = "append without read: the system log";
    r_paper = "sections 2.1-2.2 (write-append mode)";
    r_intent = Append_only_log;
    r_cases =
      [
        case eve log Append true;
        case eve log Read false;
        case eve log Write false;
        case carol log Append true;
        case carol log Read false;
        case auditor log Read true;
      ];
  }

let all = [ r1; r2; r3; r4; r5; r6; r7; r8; r9; r10; r11; r12 ]
let find id = List.find_opt (fun r -> String.equal r.r_id id) all
