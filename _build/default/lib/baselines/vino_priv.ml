let name = "vino"
let description = "VINO privileged/regular users with per-object sensitivity checks"

type config = {
  privileged : string list;
  sensitive : string list;  (** object paths guarded by a privilege check *)
}

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call { service; allowed } ->
    (* One boundary: the allowed set becomes the privileged set. *)
    Some { privileged = allowed; sensitive = [ service ] }
  | World.Restrict_extend _ ->
    (* Call and extend would need two different privileged sets;
       there is only one privilege bit. *)
    None
  | World.Group_except { members; except; file; _ } ->
    Some
      {
        privileged = List.filter (fun m -> not (String.equal m except)) members;
        sensitive = [ file ];
      }
  | World.Multi_group { groups; file } ->
    Some { privileged = List.concat_map snd groups; sensitive = [ file ] }
  | World.Per_file { readable = readable_path, readers; private_; dir = _ } ->
    (* Two different principal sets on two objects, one privilege
       bit: guard the private file with the owner as the privileged
       set, and leave the public one open.  The public file is then
       open to everyone, not just the listed readers — acceptable for
       these cases but only by luck; we still try. *)
    ignore readers;
    ignore readable_path;
    Some { privileged = [ "alice" ]; sensitive = [ private_ ] }
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept ->
    (* Three levels / two incomparable compartments exceed one bit. *)
    None
  | World.No_leak ->
    (* Dynamic privilege checks guard *access*, not propagation; the
       natural setup leaves carol free to write her own drop box. *)
    Some { privileged = [ "carol" ]; sensitive = [ "local/log" ] }
  | World.Static_pin | World.Class_dispatch -> None
  | World.Append_only_log ->
    (* Per-object (not per-operation) sensitivity: guarding the log
       blocks the appends; leaving it open exposes reads. *)
    Some { privileged = [ "auditor" ]; sensitive = [ "var/log" ] }

let decide config (s : World.subject) (obj : World.object_) (op : World.operation) =
  ignore op;
  if List.mem s.World.s_name config.privileged then true
  else not (List.mem obj.World.o_path config.sensitive)
