(** The policy-requirement suite for the expressiveness experiment
    (T3).

    Twelve requirements, each traceable to a claim in the paper, each
    with concrete cases.  R1-R5 are discretionary (sections 1.2 and
    2.1); R6-R9 mandatory (section 2.2); R10-R12 extension-specific
    (sections 2.2-2.3).

    Ground rule for encoders: a model may use the groups named in the
    requirement's subjects, but may not synthesize new principal sets
    — administering such sets by hand is exactly the cost that
    negative entries and category labels exist to avoid. *)

val all : World.requirement list
(** R1..R12, in order. *)

val find : string -> World.requirement option
(** Look a requirement up by id. *)

(** The shared cast of principals, for tests. *)

val alice : World.subject
(** Local, dept d1, groups staff+eng. *)

val bob : World.subject
(** Local, dept d2, groups staff+qa. *)

val carol : World.subject
(** Org, dept d1, group staff. *)

val dave : World.subject
(** Org, dept d2, no groups. *)

val both_depts : World.subject
(** Org, depts d1+d2. *)

val eve : World.subject
(** Outside, nothing else. *)

val mallory : World.subject
(** Local, in staff, individually banned in R3. *)
