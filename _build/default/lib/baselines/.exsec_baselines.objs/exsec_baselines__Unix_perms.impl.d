lib/baselines/unix_perms.ml: List String World
