lib/baselines/vino_priv.ml: List String World
