lib/baselines/afs_acl.mli: Model
