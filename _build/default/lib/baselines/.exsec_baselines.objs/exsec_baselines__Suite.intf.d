lib/baselines/suite.mli: World
