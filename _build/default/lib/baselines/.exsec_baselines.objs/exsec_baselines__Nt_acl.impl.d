lib/baselines/nt_acl.ml: List String World
