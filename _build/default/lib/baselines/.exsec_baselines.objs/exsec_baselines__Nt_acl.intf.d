lib/baselines/nt_acl.mli: Model
