lib/baselines/world.mli: Format
