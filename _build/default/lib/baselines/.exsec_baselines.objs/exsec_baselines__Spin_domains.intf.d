lib/baselines/spin_domains.mli: Model
