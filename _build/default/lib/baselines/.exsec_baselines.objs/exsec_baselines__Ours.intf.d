lib/baselines/ours.mli: Model
