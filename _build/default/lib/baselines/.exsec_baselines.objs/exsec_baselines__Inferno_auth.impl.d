lib/baselines/inferno_auth.ml: List World
