lib/baselines/afs_acl.ml: Bool List String World
