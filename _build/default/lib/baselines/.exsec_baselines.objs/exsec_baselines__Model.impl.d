lib/baselines/model.ml: Bool Format List Printf World
