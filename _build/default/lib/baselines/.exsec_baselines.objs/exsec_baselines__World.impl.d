lib/baselines/world.ml: Format String
