lib/baselines/suite.ml: List String World
