lib/baselines/vino_priv.mli: Model
