lib/baselines/unix_perms.mli: Model
