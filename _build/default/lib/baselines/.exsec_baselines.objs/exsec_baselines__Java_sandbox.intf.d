lib/baselines/java_sandbox.mli: Model
