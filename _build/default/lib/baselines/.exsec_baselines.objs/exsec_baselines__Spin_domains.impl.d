lib/baselines/spin_domains.ml: List World
