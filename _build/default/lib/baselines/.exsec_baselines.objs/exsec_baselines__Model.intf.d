lib/baselines/model.mli: Format World
