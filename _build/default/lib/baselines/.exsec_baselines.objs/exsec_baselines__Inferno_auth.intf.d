lib/baselines/inferno_auth.mli: Model
