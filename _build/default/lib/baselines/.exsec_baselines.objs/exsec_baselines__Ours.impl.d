lib/baselines/ours.ml: Access_mode Acl Category Decision Exsec_core Level List Meta Principal Reference_monitor Security_class String Subject World
