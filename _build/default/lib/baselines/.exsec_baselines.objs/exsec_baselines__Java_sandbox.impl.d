lib/baselines/java_sandbox.ml: List World
