type origin =
  | Local
  | Org
  | Outside

let origin_rank = function
  | Local -> 2
  | Org -> 1
  | Outside -> 0

let pp_origin ppf origin =
  Format.pp_print_string ppf
    (match origin with
    | Local -> "local"
    | Org -> "organization"
    | Outside -> "outside")

type ext = {
  e_name : string;
  e_origin : origin;
  e_depts : string list;
}

type subject = {
  s_name : string;
  s_origin : origin;
  s_depts : string list;
  s_privileged : bool;
  s_groups : string list;
  s_ext : ext option;
}

type kind =
  | File
  | Service

type object_ = {
  o_path : string;
  o_owner : string;
  o_origin : origin;
  o_depts : string list;
  o_kind : kind;
}

type operation =
  | Read
  | Write
  | Append
  | Call
  | Extend

let pp_operation ppf op =
  Format.pp_print_string ppf
    (match op with
    | Read -> "read"
    | Write -> "write"
    | Append -> "append"
    | Call -> "call"
    | Extend -> "extend")

type case = {
  c_subject : subject;
  c_object : object_;
  c_op : operation;
  c_expect : bool;
}

type intent =
  | Restrict_call of { service : string; allowed : string list }
  | Restrict_extend of { service : string; may_call : string list; may_extend : string list }
  | Group_except of { group : string; members : string list; except : string; file : string }
  | Multi_group of { groups : (string * string list) list; file : string }
  | Per_file of { dir : string; readable : string * string list; private_ : string }
  | Level_hierarchy
  | Dept_isolation
  | Level_and_dept
  | No_leak
  | Static_pin
  | Class_dispatch
  | Append_only_log

type requirement = {
  r_id : string;
  r_title : string;
  r_paper : string;
  r_intent : intent;
  r_cases : case list;
}

let subject ?(origin = Local) ?(depts = []) ?(privileged = false) ?(groups = []) ?ext
    name =
  {
    s_name = name;
    s_origin = origin;
    s_depts = depts;
    s_privileged = privileged;
    s_groups = groups;
    s_ext = ext;
  }

let file ?(owner = "root") ?(origin = Local) ?(depts = []) path =
  { o_path = path; o_owner = owner; o_origin = origin; o_depts = depts; o_kind = File }

let service ?(owner = "root") ?(origin = Local) ?(depts = []) path =
  { o_path = path; o_owner = owner; o_origin = origin; o_depts = depts; o_kind = Service }

let case c_subject c_object c_op c_expect = { c_subject; c_object; c_op; c_expect }

let dir_of obj =
  match String.rindex_opt obj.o_path '/' with
  | None -> ""
  | Some i -> String.sub obj.o_path 0 i
