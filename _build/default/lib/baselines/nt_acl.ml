let name = "windows-nt"
let description = "NT per-file ACLs with allow/deny entries and specific rights"

type right =
  | Read_data
  | Write_data
  | Append_data

type who =
  | User of string
  | Group of string
  | Everyone

type ace = {
  who : who;
  allow : bool;
  rights : right list;
}

type obj_acl = {
  path : string;
  entries : ace list;  (** NT evaluation order: deny entries first *)
}

type config = obj_acl list

let ace ?(allow = true) who rights = { who; allow; rights }

let matches (s : World.subject) = function
  | User name -> String.equal name s.World.s_name
  | Group group -> List.mem group s.World.s_groups
  | Everyone -> true

(* NT semantics: walk the (canonicalized: denies first) ACL; the first
   matching entry mentioning the right decides. *)
let allowed entries s right =
  let ordered =
    List.filter (fun e -> not e.allow) entries @ List.filter (fun e -> e.allow) entries
  in
  let rec scan = function
    | [] -> false
    | e :: rest ->
      if matches s e.who && List.mem right e.rights then e.allow else scan rest
  in
  scan ordered

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call _ | World.Restrict_extend _ ->
    (* Kernel extension interfaces are not securable NT objects. *)
    None
  | World.Group_except { group; except; file; _ } ->
    Some
      [
        {
          path = file;
          entries =
            [ ace ~allow:false (User except) [ Read_data ]; ace (Group group) [ Read_data ] ];
        };
      ]
  | World.Multi_group { groups; file } ->
    Some
      [
        { path = file; entries = List.map (fun (g, _) -> ace (Group g) [ Read_data ]) groups };
      ]
  | World.Per_file { readable = readable_path, readers; private_; dir = _ } ->
    Some
      [
        {
          path = readable_path;
          entries =
            ace (User "alice") [ Read_data; Write_data; Append_data ]
            :: List.map (fun who -> ace (User who) [ Read_data ]) readers;
        };
        {
          path = private_;
          entries = [ ace (User "alice") [ Read_data; Write_data; Append_data ] ];
        };
      ]
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept -> None
  | World.No_leak ->
    Some
      [
        { path = "drop/box"; entries = [ ace (User "carol") [ Read_data; Write_data ] ] };
        {
          path = "org/carol-notes";
          entries = [ ace (User "carol") [ Read_data; Write_data ] ];
        };
        { path = "local/log"; entries = [ ace Everyone [ Append_data ] ] };
      ]
  | World.Static_pin | World.Class_dispatch -> None
  | World.Append_only_log ->
    (* Append-data is a genuine NT right, so the append/overwrite
       boundary holds; but with no clearance labels the auditor's read
       cannot be derived from the intent. *)
    Some [ { path = "var/log"; entries = [ ace Everyone [ Append_data ] ] } ]

let decide config (s : World.subject) (obj : World.object_) (op : World.operation) =
  match obj.World.o_kind with
  | World.Service -> false
  | World.File -> (
    match List.find_opt (fun o -> String.equal o.path obj.World.o_path) config with
    | None -> false
    | Some { entries; _ } -> (
      match op with
      | World.Read -> allowed entries s Read_data
      | World.Write -> allowed entries s Write_data
      | World.Append -> allowed entries s Append_data || allowed entries s Write_data
      | World.Call | World.Extend -> false))
