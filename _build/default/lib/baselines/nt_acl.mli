(** Windows NT ACLs: per-object access control lists with allow and
    deny entries for users and groups, and a rich set of specific
    rights including a genuine append-data right.  The paper grants
    the model is "rich, though unnecessarily complicated", but notes
    it "does not provide a means to control the two ways extensions
    interact with the rest of the system, nor does it provide for any
    mandatory access control" (section 2).

    Accordingly: file-typed requirements with purely discretionary
    intent are expressible (deny entries and per-file granularity
    included); service-typed requirements and anything needing labels
    or extension classes are not. *)

include Model.MODEL
