let name = "spin-domains"
let description = "SPIN link-time domains: all-or-nothing service visibility"

type domain = {
  d_name : string;
  d_services : string list;
}

type config = {
  domains : domain list;
  linked : (string * string list) list;
      (** principal (or extension) name -> domains linked against *)
}

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call { service; allowed } ->
    (* A dedicated domain for the service, linked only by the allowed
       principals: exactly what domains are for. *)
    Some
      {
        domains = [ { d_name = "guarded"; d_services = [ service ] } ];
        linked = List.map (fun who -> who, [ "guarded" ]) allowed;
      }
  | World.Restrict_extend { service; may_call; may_extend = _ } ->
    (* Linking grants call AND extend together; the best available
       configuration links the callers, and the extend boundary is
       structurally lost. *)
    Some
      {
        domains = [ { d_name = "guarded"; d_services = [ service ] } ];
        linked = List.map (fun who -> who, [ "guarded" ]) may_call;
      }
  | World.Group_except _ | World.Multi_group _ | World.Per_file _
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept | World.No_leak
  | World.Append_only_log ->
    (* Domains cover interfaces, not files or information flow. *)
    None
  | World.Static_pin ->
    (* No security classes; visibility is per-extension but carries no
       notion of the principal running it, and file objects are out of
       scope anyway. *)
    None
  | World.Class_dispatch ->
    (* SPIN's dispatcher has guards but no caller classes; the paper
       calls per-extension checks "ad hoc".  No principled encoding
       exists because the linked sets would have to be maintained by
       hand per caller class. *)
    None

let services_of config who =
  match List.assoc_opt who config.linked with
  | None -> []
  | Some domain_names ->
    List.concat_map
      (fun d -> if List.mem d.d_name domain_names then d.d_services else [])
      config.domains

let decide config (s : World.subject) (obj : World.object_) (op : World.operation) =
  match obj.World.o_kind, op with
  | World.Service, (World.Call | World.Extend) ->
    List.mem obj.World.o_path (services_of config s.World.s_name)
  | World.Service, (World.Read | World.Write | World.Append) -> false
  | World.File, _ -> false
