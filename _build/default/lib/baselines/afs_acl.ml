let name = "afs"
let description = "AFS directory-granularity ACLs with negative rights"

type right =
  | R
  | W

type who =
  | User of string
  | Group of string
  | Any

type ace = {
  who : who;
  negative : bool;
  rights : right list;
}

type dir_acl = {
  dir : string;
  entries : ace list;
}

type config = dir_acl list

let ace ?(negative = false) who rights = { who; negative; rights }

let matches (s : World.subject) = function
  | User name -> String.equal name s.World.s_name
  | Group group -> List.mem group s.World.s_groups
  | Any -> true

(* AFS semantics: union of matching positive rights minus union of
   matching negative rights. *)
let rights_for entries s =
  let collect pick =
    List.concat_map
      (fun e -> if Bool.equal e.negative pick && matches s e.who then e.rights else [])
      entries
  in
  let positive = collect false in
  let negative = collect true in
  List.filter (fun r -> not (List.mem r negative)) positive

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call _ | World.Restrict_extend _ ->
    (* Services are not file-system objects; AFS has nothing to attach
       an ACL to. *)
    None
  | World.Group_except { group; except; file; _ } ->
    Some
      [
        {
          dir = World.dir_of (World.file file);
          entries = [ ace (Group group) [ R ]; ace ~negative:true (User except) [ R ] ];
        };
      ]
  | World.Multi_group { groups; file } ->
    Some
      [
        {
          dir = World.dir_of (World.file file);
          entries = List.map (fun (g, _) -> ace (Group g) [ R ]) groups;
        };
      ]
  | World.Per_file { dir; readable = _, readers; private_ = _ } ->
    (* One ACL covers the whole directory: the readers of the public
       file unavoidably reach the private one too. *)
    Some
      [
        {
          dir;
          entries = ace (User "alice") [ R; W ] :: List.map (fun who -> ace (User who) [ R ]) readers;
        };
      ]
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept ->
    None
  | World.No_leak ->
    (* Natural discretionary setup; nothing stops the owner's
       write-down. *)
    Some
      [
        { dir = "drop"; entries = [ ace (User "carol") [ R; W ] ] };
        { dir = "org"; entries = [ ace (User "carol") [ R; W ] ] };
        { dir = "local"; entries = [ ace Any [ W ] ] };
      ]
  | World.Static_pin | World.Class_dispatch -> None
  | World.Append_only_log ->
    (* w covers both append and overwrite; reads cannot be tied to a
       clearance. *)
    Some [ { dir = "var"; entries = [ ace Any [ W ] ] } ]

let decide config (s : World.subject) (obj : World.object_) (op : World.operation) =
  match obj.World.o_kind with
  | World.Service -> false
  | World.File -> (
    let dir = World.dir_of obj in
    match List.find_opt (fun d -> String.equal d.dir dir) config with
    | None -> false
    | Some { entries; _ } -> (
      let rights = rights_for entries s in
      match op with
      | World.Read -> List.mem R rights
      | World.Write | World.Append -> List.mem W rights
      | World.Call | World.Extend -> false))
