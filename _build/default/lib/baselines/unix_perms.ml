let name = "unix"
let description = "4.4BSD owner/group/other permission bits"

type perm = {
  r : bool;
  w : bool;
  x : bool;
}

let no_perm = { r = false; w = false; x = false }

type entry = {
  path : string;
  owner : string;
  group : string option;  (** a group name carried by subjects *)
  owner_p : perm;
  group_p : perm;
  other_p : perm;
}

type config = entry list
(* Objects with no entry deny everything. *)

let groups_of_requirement (requirement : World.requirement) =
  List.concat_map
    (fun (case : World.case) -> case.World.c_subject.World.s_groups)
    requirement.World.r_cases
  |> List.sort_uniq String.compare

(* The set of subject names (seen in the requirement) belonging to a
   group. *)
let members_of requirement group =
  List.filter_map
    (fun (case : World.case) ->
      let s = case.World.c_subject in
      if List.mem group s.World.s_groups then Some s.World.s_name else None)
    requirement.World.r_cases
  |> List.sort_uniq String.compare

(* Pick an existing group that, together with [owner], covers
   [wanted] — the best a single group slot can do. *)
let covering_group requirement ~owner wanted =
  let wanted = List.filter (fun name -> not (String.equal name owner)) wanted in
  let candidates = groups_of_requirement requirement in
  let covers group =
    let members = members_of requirement group in
    List.for_all (fun name -> List.mem name members) wanted
  in
  match List.filter covers candidates with
  | [] -> None
  | covering ->
    (* Tightest covering group: fewest members. *)
    Some
      (List.fold_left
         (fun best group ->
           if List.length (members_of requirement group) < List.length (members_of requirement best)
           then group
           else best)
         (List.hd covering) (List.tl covering))

let entry ?(group = None) ?(owner_p = no_perm) ?(group_p = no_perm) ?(other_p = no_perm)
    path owner =
  { path; owner; group; owner_p; group_p; other_p }

let rwx = { r = true; w = true; x = true }
let r__ = { r = true; w = false; x = false }
let _w_ = { r = false; w = true; x = false }
let rw_ = { r = true; w = true; x = false }
let __x = { r = false; w = false; x = true }

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call { service; allowed } -> (
    (* One principal fits the owner slot; a set needs a group. *)
    match allowed with
    | [ single ] -> Some [ entry service single ~owner_p:rwx ]
    | several -> (
      match covering_group requirement ~owner:(List.hd several) several with
      | Some group ->
        Some
          [ entry service (List.hd several) ~group:(Some group) ~owner_p:rwx ~group_p:__x ]
      | None -> None))
  | World.Restrict_extend { service; may_call; may_extend } -> (
    (* No extend bit exists: x stands for both.  Configure x for the
       callers; the extend boundary is necessarily lost. *)
    let owner = match may_extend with o :: _ -> o | [] -> "root" in
    match covering_group requirement ~owner may_call with
    | Some group ->
      Some [ entry service owner ~group:(Some group) ~owner_p:rwx ~group_p:__x ]
    | None -> None)
  | World.Group_except { group; file; _ } ->
    (* No negative entries: the banned member keeps group access. *)
    Some [ entry file "root" ~group:(Some group) ~owner_p:rwx ~group_p:r__ ]
  | World.Multi_group { groups; file } -> (
    (* One group slot: pick the first; the second group loses out. *)
    match groups with
    | (g, _) :: _ -> Some [ entry file "root" ~group:(Some g) ~owner_p:rwx ~group_p:r__ ]
    | [] -> None)
  | World.Per_file { readable = readable_path, readers; private_; dir = _ } -> (
    (* Unix is genuinely per-file; only the reader set must match an
       existing group. *)
    match covering_group requirement ~owner:"" readers with
    | Some group ->
      Some
        [
          entry readable_path "alice" ~group:(Some group) ~owner_p:rwx ~group_p:r__;
          entry private_ "alice" ~owner_p:rwx;
        ]
    | None -> None)
  | World.Level_hierarchy | World.Dept_isolation | World.Level_and_dept ->
    (* No labels, and no origin-based groups exist to borrow. *)
    None
  | World.No_leak ->
    (* The natural discretionary configuration: owners hold rw on
       their own files, the log accepts writes from everyone.  DAC has
       no way to stop the owner's write-down. *)
    Some
      [
        entry "drop/box" "carol" ~owner_p:rw_;
        entry "org/carol-notes" "carol" ~owner_p:rw_;
        entry "local/log" "root" ~owner_p:rwx ~other_p:_w_;
      ]
  | World.Static_pin | World.Class_dispatch ->
    (* No notion of extension identity or code classes. *)
    None
  | World.Append_only_log ->
    (* w grants full write (no append-only bit); reads limited to the
       owner, which the roaming auditor is not. *)
    Some [ entry "var/log" "root" ~owner_p:rw_ ~other_p:_w_ ]

let perm_for config (s : World.subject) (obj : World.object_) =
  match List.find_opt (fun e -> String.equal e.path obj.World.o_path) config with
  | None -> no_perm
  | Some e ->
    if String.equal s.World.s_name e.owner then e.owner_p
    else (
      match e.group with
      | Some group when List.mem group s.World.s_groups -> e.group_p
      | Some _ | None -> e.other_p)

let decide config s obj (op : World.operation) =
  let perm = perm_for config s obj in
  match op with
  | World.Read -> perm.r
  | World.Write | World.Append -> perm.w
  | World.Call | World.Extend -> perm.x
