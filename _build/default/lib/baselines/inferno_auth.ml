let name = "inferno"
let description = "Inferno: mutual authentication of parties, no access-control model"

type config = { authenticated : string list }

let encode (requirement : World.requirement) : config option =
  match requirement.World.r_intent with
  | World.Restrict_call _ | World.Restrict_extend _ | World.Group_except _
  | World.Multi_group _ | World.Per_file _ | World.Level_hierarchy
  | World.Dept_isolation | World.Level_and_dept | World.No_leak | World.Static_pin
  | World.Class_dispatch | World.Append_only_log ->
    (* Authentication establishes identity; none of these intents is
       about identity establishment.  Nothing to configure. *)
    None

let decide config (s : World.subject) (_obj : World.object_) (_op : World.operation) =
  List.mem s.World.s_name config.authenticated
