(** Andrew File System ACLs: full positive {e and} negative entries
    for users and groups — but only at the granularity of entire
    directories, "which we believe is at too high a grain" (paper,
    sections 1.2, 2).

    Rights modelled: [r] (read), [w] (write/append — AFS has no
    append-only right), [l] (lookup).  Services are not AFS objects,
    so service-typed requirements are inexpressible; so is anything
    needing labels (no mandatory layer). *)

include Model.MODEL
