lib/shell/shell.mli: Exsec_core
