(** An interactive operator shell over a live extensible system.

    One booted kernel with memfs, syslog, netstack and introspection
    installed, driven by single-line commands — every operation goes
    through the reference monitor as the logged-in subject, so the
    shell is a hands-on demonstration of the whole model (and is used
    by [exsecd shell]).

    The interpreter is a library (not buried in the binary) so the
    command surface is unit-testable: {!exec} maps one input line to
    output text, never raising. *)

type t

val create : ?policy:Exsec_core.Policy_text.t -> unit -> (t, string) result
(** Boot the world.  Without a policy, a demonstration deployment is
    used: the paper's [local > organization > others] levels and
    department categories, an [admin] (trusted) and a couple of
    sample users.  With a policy, its lattice, principals and
    clearances apply, and its objects are materialized as files under
    [/fs] (service-path objects are skipped — services come from the
    boot sequence). *)

val exec : t -> string -> string
(** Execute one command line; returns the text to print (possibly
    empty, possibly multi-line).  Unknown commands yield the help
    text.  Never raises. *)

val help : string

val prompt : t -> string
(** ["principal@class> "] for the current session. *)
