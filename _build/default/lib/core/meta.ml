type t = {
  id : int;
  mutable owner : Principal.individual;
  mutable acl : Acl.t;
  mutable klass : Security_class.t;
  mutable integrity : Security_class.t option;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let make ~owner ?acl ?integrity klass =
  let acl =
    match acl with
    | Some acl -> acl
    | None -> Acl.owner_default owner
  in
  { id = fresh_id (); owner; acl; klass; integrity }

let copy meta =
  {
    id = fresh_id ();
    owner = meta.owner;
    acl = meta.acl;
    klass = meta.klass;
    integrity = meta.integrity;
  }

let set_owner meta owner = meta.owner <- owner
let set_acl_raw meta acl = meta.acl <- acl
let set_klass_raw meta klass = meta.klass <- klass
let set_integrity_raw meta integrity = meta.integrity <- integrity

let pp ppf meta =
  Format.fprintf ppf "owner=%a class=%a acl=%a" Principal.pp_individual meta.owner
    Security_class.pp meta.klass Acl.pp meta.acl
