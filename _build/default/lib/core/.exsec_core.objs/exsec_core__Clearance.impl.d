lib/core/clearance.ml: Digest Format Hashtbl List Option Principal Security_class String Subject
