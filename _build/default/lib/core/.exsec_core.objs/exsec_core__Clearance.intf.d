lib/core/clearance.mli: Format Principal Security_class Subject
