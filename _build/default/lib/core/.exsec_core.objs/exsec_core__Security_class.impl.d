lib/core/security_class.ml: Category Format Level
