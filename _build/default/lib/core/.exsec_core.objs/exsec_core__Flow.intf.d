lib/core/flow.mli: Audit Format Security_class
