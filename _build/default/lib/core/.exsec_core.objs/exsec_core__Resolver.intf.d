lib/core/resolver.mli: Access_mode Acl Decision Format Meta Namespace Path Reference_monitor Security_class Subject
