lib/core/subject.ml: Format Principal Security_class
