lib/core/flow.ml: Access_mode Audit Decision Format Hashtbl List Principal Security_class Subject
