lib/core/namespace.ml: Format Hashtbl List Meta Path String
