lib/core/mac.mli: Access_mode Format Security_class
