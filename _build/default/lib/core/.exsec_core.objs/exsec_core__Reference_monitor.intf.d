lib/core/reference_monitor.mli: Access_mode Acl Audit Decision Meta Policy Principal Security_class Subject
