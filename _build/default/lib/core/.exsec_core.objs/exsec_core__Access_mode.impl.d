lib/core/access_mode.ml: Format Int List
