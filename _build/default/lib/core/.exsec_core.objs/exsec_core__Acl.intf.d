lib/core/acl.mli: Access_mode Format Principal
