lib/core/reference_monitor.ml: Access_mode Acl Audit Decision Integrity Mac Meta Policy Principal Result Security_class Subject
