lib/core/decision.ml: Acl Format Integrity Mac Principal String
