lib/core/meta.ml: Acl Format Principal Security_class
