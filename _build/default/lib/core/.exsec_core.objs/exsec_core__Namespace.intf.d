lib/core/namespace.mli: Format Meta Path
