lib/core/integrity.ml: Access_mode Format Security_class
