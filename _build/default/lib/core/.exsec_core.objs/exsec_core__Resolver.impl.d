lib/core/resolver.ml: Access_mode Decision Format List Namespace Path Reference_monitor String
