lib/core/meta.mli: Acl Format Principal Security_class
