lib/core/audit.mli: Access_mode Decision Format Security_class Subject
