lib/core/policy.ml: Format Mac
