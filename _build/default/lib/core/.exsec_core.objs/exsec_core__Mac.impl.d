lib/core/mac.ml: Access_mode Format Security_class
