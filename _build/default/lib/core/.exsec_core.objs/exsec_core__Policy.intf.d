lib/core/policy.mli: Format Mac
