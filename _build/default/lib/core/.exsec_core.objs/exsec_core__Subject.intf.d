lib/core/subject.mli: Format Principal Security_class
