lib/core/access_mode.mli: Format
