lib/core/acl.ml: Access_mode Array Format List Principal
