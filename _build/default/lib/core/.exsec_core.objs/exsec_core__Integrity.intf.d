lib/core/integrity.mli: Access_mode Format Security_class
