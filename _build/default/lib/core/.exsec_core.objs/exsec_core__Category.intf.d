lib/core/category.mli: Format
