lib/core/category.ml: Array Format List Printf String Sys
