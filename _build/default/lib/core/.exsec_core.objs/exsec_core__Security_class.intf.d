lib/core/security_class.mli: Category Format Level
