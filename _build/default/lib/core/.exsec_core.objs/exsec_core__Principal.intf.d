lib/core/principal.mli: Format
