lib/core/audit.ml: Access_mode Array Decision Format Security_class Stdlib Subject
