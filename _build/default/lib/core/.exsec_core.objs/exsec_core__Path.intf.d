lib/core/path.mli: Format
