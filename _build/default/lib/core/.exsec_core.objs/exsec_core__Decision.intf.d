lib/core/decision.mli: Acl Format Integrity Mac
