lib/core/path.ml: Format List String
