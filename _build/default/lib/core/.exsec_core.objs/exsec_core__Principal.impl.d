lib/core/principal.ml: Format Hashtbl List Printf Set String
