lib/core/policy_text.ml: Access_mode Acl Bool Buffer Category Clearance Format Hashtbl Int Level List Meta Option Principal Printf Security_class String
