lib/core/level.ml: Array Format Int List Printf String
