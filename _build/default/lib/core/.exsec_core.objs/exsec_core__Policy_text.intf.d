lib/core/policy_text.mli: Category Clearance Format Level Meta Principal
