(** Mandatory access control rules (paper, section 2.2).

    Subjects may {e view} an object when their class dominates the
    object's (no read-up), and {e modify} it when the object's class
    dominates theirs (the [*]-property: no write-down).  The paper
    notes that plain [write] may have to be restricted further so a
    lower-trust subject cannot blindly overwrite a higher-trust
    object; the {!overwrite_rule} knob captures that: under {!Strict},
    plain [Write] and [Delete] require {e equal} classes while
    [Write_append] keeps the liberal [*]-property. *)

type overwrite_rule =
  | Liberal  (** any write-like mode follows the plain [*]-property *)
  | Strict
      (** [Write]/[Delete] require equal classes; [Write_append] (and
          [Extend], [Administrate]) keep the [*]-property *)

val read_ok : subject:Security_class.t -> object_:Security_class.t -> bool
(** The simple-security property: subject dominates object. *)

val write_ok : subject:Security_class.t -> object_:Security_class.t -> bool
(** The [*]-property: object dominates subject. *)

val permits :
  rule:overwrite_rule ->
  subject:Security_class.t ->
  object_:Security_class.t ->
  Access_mode.t ->
  bool
(** Apply the read rule to read-like modes and the write rule
    (possibly strict) to write-like modes. *)

type denial =
  | Read_up  (** subject class does not dominate the object's *)
  | Write_down  (** object class does not dominate the subject's *)
  | Blind_overwrite
      (** strict rule: write at unequal classes, append required *)

val check :
  rule:overwrite_rule ->
  subject:Security_class.t ->
  object_:Security_class.t ->
  Access_mode.t ->
  (unit, denial) result

val pp_denial : Format.formatter -> denial -> unit
