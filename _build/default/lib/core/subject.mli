(** Subjects: threads of control acting on behalf of a principal
    (paper, section 2.2).

    A subject runs at the security class of its principal (the
    {e clearance}).  When the thread enters code that carries a
    statically assigned class — an extension pinned to a class so it
    cannot launder its caller's authority — that class becomes a
    {e ceiling}, and the subject's effective class is the lattice meet
    of clearance and ceiling.  Ceilings nest: entering further pinned
    code can only lower the effective class. *)

type t

val make :
  ?ceiling:Security_class.t -> ?trusted:bool -> ?integrity:Security_class.t ->
  Principal.individual -> Security_class.t -> t
(** [make principal clearance] is a fresh subject.  [trusted] (default
    [false]) marks a Bell-LaPadula {e trusted subject}: part of the
    trusted computing base and exempt from the mandatory [*]-property
    (it may write down), though still subject to discretionary
    control.  Only the kernel's own administrative threads should be
    trusted. *)

val is_trusted : t -> bool

val integrity : t -> Security_class.t option
(** The subject's Biba integrity class, when the deployment labels
    integrity; unlabelled subjects are exempt from integrity rules. *)

val principal : t -> Principal.individual
val clearance : t -> Security_class.t

val ceiling : t -> Security_class.t option
(** The current static-class cap, if any. *)

val effective_class : t -> Security_class.t
(** [meet clearance ceiling] when a ceiling is set, else the
    clearance. *)

val with_ceiling : t -> Security_class.t -> t
(** Enter code pinned at the given class; composes (meets) with any
    existing ceiling. *)

val without_ceiling : t -> t
(** Drop the ceiling — only the kernel may do this, when control
    returns from pinned code to the base system. *)

val pp : Format.formatter -> t -> unit
