(** Linearly ordered trust levels (paper, section 2.2).

    A {e hierarchy} fixes a finite, linearly ordered set of level
    names, highest trust first in the paper's example
    ([local > organization > others]).  Levels from different
    hierarchies are incomparable and attempting to compare them is a
    programming error. *)

type hierarchy
(** A linearly ordered set of level names. *)

type t
(** One level within a hierarchy. *)

val hierarchy : string list -> hierarchy
(** [hierarchy names] builds a hierarchy with [names] listed from
    {e highest} to {e lowest} trust.
    @raise Invalid_argument on an empty list or duplicate names. *)

val names : hierarchy -> string list
(** Level names, highest first (as given to {!hierarchy}). *)

val of_name : hierarchy -> string -> t option
val of_name_exn : hierarchy -> string -> t
val name : t -> string

val rank : t -> int
(** Numeric rank; the {e lowest} level has rank [0], so higher trust
    means greater rank. *)

val top : hierarchy -> t
(** The highest-trust level. *)

val bottom : hierarchy -> t
(** The lowest-trust level. *)

val same_hierarchy : t -> t -> bool

val compare : t -> t -> int
(** Orders by trust.
    @raise Invalid_argument when the levels belong to different
    hierarchies. *)

val equal : t -> t -> bool
val dominates : t -> t -> bool
(** [dominates a b] iff [a] is at least as trusted as [b]. *)

val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
