type t = {
  dac : bool;
  mac : bool;
  integrity : bool;
  overwrite : Mac.overwrite_rule;
  recheck_calls : bool;
}

let default =
  { dac = true; mac = true; integrity = true; overwrite = Mac.Strict; recheck_calls = false }

let dac_only = { default with mac = false; integrity = false }
let mac_only = { default with dac = false }
let unchecked = { default with dac = false; mac = false; integrity = false }
let no_integrity = { default with integrity = false }
let with_recheck policy = { policy with recheck_calls = true }

let pp ppf policy =
  Format.fprintf ppf "{dac=%b; mac=%b; integrity=%b; overwrite=%s; recheck_calls=%b}"
    policy.dac policy.mac policy.integrity
    (match policy.overwrite with Mac.Liberal -> "liberal" | Mac.Strict -> "strict")
    policy.recheck_calls
