(** Information-flow analysis over audit trails.

    The paper claims that with lattice-based mandatory control "all
    flow of information in an extensible system can … be tightly
    controlled" (section 2.2).  This module checks that claim against
    what actually happened: given the audit log of a run, it replays
    every {e granted} access and reports

    - direct violations of the simple-security property (a granted
      read-like access whose subject did not dominate the object),
    - direct violations of the [*]-property (a granted write-like
      access whose object did not dominate the subject), and
    - {e transitive} leaks found with a high-water-mark replay (after
      Weissman's ADEPT-50): each principal's watermark is the join of
      everything it has observed, each object's watermark the join of
      everything written into it (objects are identified by their
      unique {!Meta.t} identities, so name reuse after delete +
      recreate does not alias).  Reads propagate object watermarks to principals
      and writes propagate principal watermarks to objects, so a leak
      laundered through an intermediary object {e between} principals
      is reported at the final downward write.

    Under the default DAC+MAC policy the report must be empty (a
    qcheck property and bench A2 check this); under [Policy.dac_only]
    it exposes exactly the flows discretionary control cannot stop.

    Events whose subject is a Bell-LaPadula {e trusted subject} (the
    TCB) are skipped: their administrative write-downs are sanctioned
    by definition.

    All events must come from one deployment (one level hierarchy and
    category universe); mixing lattices is a programming error. *)

type finding =
  | Read_up of Audit.event
      (** granted observation above the subject's class *)
  | Write_down of Audit.event
      (** granted modification below the subject's class *)
  | Transitive_leak of {
      watermark : Security_class.t;  (** join of everything observed *)
      event : Audit.event;  (** the write that could carry it down *)
    }

type report = {
  scanned : int;  (** events examined *)
  grants : int;  (** granted events replayed *)
  findings : finding list;  (** in event order *)
}

val analyse : Audit.event list -> report
(** Replay a trail (oldest first, as {!Audit.events} returns it). *)

val analyse_log : Audit.t -> report
(** [analyse (Audit.events log)]. *)

val is_clean : report -> bool
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
