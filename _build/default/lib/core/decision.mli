(** Access decisions and the reasons behind them.

    Every check performed by the reference monitor yields a decision
    that records {e why} access was granted or refused, so audit logs
    and error messages can explain themselves. *)

type denial =
  | Dac_no_entry  (** closed-world default: no ACL entry matched *)
  | Dac_explicit_deny of Acl.who  (** a negative ACL entry matched *)
  | Mac_denied of Mac.denial
  | Integrity_denied of Integrity.denial
  | Not_an_object  (** the name did not resolve to an object *)
  | Path_denied of string
      (** traversal was refused at the named intermediate node *)

type t =
  | Granted
  | Denied of denial

val is_granted : t -> bool
val equal : t -> t -> bool
val pp_denial : Format.formatter -> denial -> unit
val pp : Format.formatter -> t -> unit

val to_result : t -> (unit, denial) result
val of_result : (unit, denial) result -> t
