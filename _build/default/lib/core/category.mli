(** Categories and category sets (paper, section 2.2).

    A {e universe} fixes the finite set of category names in use; a
    category set is a subset of one universe.  Subsets are partially
    ordered by inclusion, providing the compartment half of the
    security-class lattice. *)

type universe
type t
(** A subset of a universe's categories. *)

val universe : string list -> universe
(** @raise Invalid_argument on duplicates or an empty name. *)

val universe_names : universe -> string list
(** Category names in declaration order. *)

val universe_size : universe -> int

val empty : universe -> t
val full : universe -> t
val of_names : universe -> string list -> t
(** @raise Invalid_argument on a name outside the universe. *)

val names : t -> string list
val mem : t -> string -> bool
val cardinal : t -> int
val same_universe : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] iff [a]'s categories are all in [b].
    @raise Invalid_argument across universes. *)

val equal : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val pp : Format.formatter -> t -> unit
