type overwrite_rule =
  | Liberal
  | Strict

let read_ok ~subject ~object_ = Security_class.dominates subject object_
let write_ok ~subject ~object_ = Security_class.dominates object_ subject

type denial =
  | Read_up
  | Write_down
  | Blind_overwrite

let check ~rule ~subject ~object_ mode =
  if Access_mode.is_read_like mode then
    if read_ok ~subject ~object_ then Ok () else Error Read_up
  else if not (write_ok ~subject ~object_) then Error Write_down
  else
    match rule, mode with
    | Strict, (Access_mode.Write | Access_mode.Delete)
      when not (Security_class.equal subject object_) ->
      Error Blind_overwrite
    | (Strict | Liberal), _ -> Ok ()

let permits ~rule ~subject ~object_ mode =
  match check ~rule ~subject ~object_ mode with
  | Ok () -> true
  | Error _ -> false

let pp_denial ppf = function
  | Read_up -> Format.pp_print_string ppf "read-up (subject class does not dominate object)"
  | Write_down -> Format.pp_print_string ppf "write-down (object class does not dominate subject)"
  | Blind_overwrite ->
    Format.pp_print_string ppf "blind overwrite (strict rule requires equal classes; use write-append)"
