type record = {
  clearance : Security_class.t;
  integrity : Security_class.t option;
  trusted : bool;
  secret_digest : string option;
}

type t = { table : (string, record) Hashtbl.t }

type error =
  | Unknown_principal of Principal.individual
  | Bad_secret
  | Above_clearance of {
      requested : Security_class.t;
      clearance : Security_class.t;
    }

let pp_error ppf = function
  | Unknown_principal ind ->
    Format.fprintf ppf "unknown principal %a" Principal.pp_individual ind
  | Bad_secret -> Format.pp_print_string ppf "authentication failed"
  | Above_clearance { requested; clearance } ->
    Format.fprintf ppf "requested class %a exceeds clearance %a" Security_class.pp
      requested Security_class.pp clearance

let create () = { table = Hashtbl.create 16 }

let digest secret = Digest.string ("exsec-clearance:" ^ secret)

let register registry ?secret ?integrity ?(trusted = false) ind clearance =
  Hashtbl.replace registry.table
    (Principal.individual_name ind)
    { clearance; integrity; trusted; secret_digest = Option.map digest secret }

let revoke registry ind = Hashtbl.remove registry.table (Principal.individual_name ind)

let find registry ind = Hashtbl.find_opt registry.table (Principal.individual_name ind)

let clearance_of registry ind = Option.map (fun r -> r.clearance) (find registry ind)

type detail = {
  clearance : Security_class.t;
  integrity : Security_class.t option;
  trusted : bool;
}

let detail_of registry ind =
  Option.map
    (fun (r : record) : detail ->
      { clearance = r.clearance; integrity = r.integrity; trusted = r.trusted })
    (find registry ind)

let is_registered registry ind = find registry ind <> None

let registered registry =
  Hashtbl.fold (fun name _ acc -> Principal.individual name :: acc) registry.table []
  |> List.sort Principal.compare_individual

let session (record : record) ?at ind =
  let requested =
    match at with
    | None -> record.clearance
    | Some requested -> requested
  in
  if Security_class.dominates record.clearance requested then
    Ok
      (Subject.make ~trusted:record.trusted ?integrity:record.integrity ind requested)
  else Error (Above_clearance { requested; clearance = record.clearance })

let login registry ?at ind =
  match find registry ind with
  | None -> Error (Unknown_principal ind)
  | Some record -> session record ?at ind

let authenticate registry ~secret ?at ind =
  match find registry ind with
  | None -> Error (Unknown_principal ind)
  | Some record -> (
    match record.secret_digest with
    | Some expected when String.equal expected (digest secret) -> session record ?at ind
    | Some _ | None -> Error Bad_secret)
