type t = {
  principal : Principal.individual;
  clearance : Security_class.t;
  ceiling : Security_class.t option;
  trusted : bool;
  integrity : Security_class.t option;
}

let make ?ceiling ?(trusted = false) ?integrity principal clearance =
  { principal; clearance; ceiling; trusted; integrity }

let is_trusted subject = subject.trusted
let integrity subject = subject.integrity
let principal subject = subject.principal
let clearance subject = subject.clearance
let ceiling subject = subject.ceiling

let effective_class subject =
  match subject.ceiling with
  | None -> subject.clearance
  | Some cap -> Security_class.meet subject.clearance cap

let with_ceiling subject cap =
  let cap =
    match subject.ceiling with
    | None -> cap
    | Some existing -> Security_class.meet existing cap
  in
  { subject with ceiling = Some cap }

let without_ceiling subject = { subject with ceiling = None }

let pp ppf subject =
  Format.fprintf ppf "%a@%a" Principal.pp_individual subject.principal
    Security_class.pp (effective_class subject)
