type t = {
  level : Level.t;
  categories : Category.t;
}

let make level categories = { level; categories }
let level cls = cls.level
let categories cls = cls.categories

let dominates a b =
  Level.dominates a.level b.level && Category.subset b.categories a.categories

let equal a b = Level.equal a.level b.level && Category.equal a.categories b.categories
let comparable a b = dominates a b || dominates b a

let join a b =
  { level = Level.max a.level b.level; categories = Category.union a.categories b.categories }

let meet a b =
  { level = Level.min a.level b.level; categories = Category.inter a.categories b.categories }

let top hierarchy universe =
  { level = Level.top hierarchy; categories = Category.full universe }

let bottom hierarchy universe =
  { level = Level.bottom hierarchy; categories = Category.empty universe }

let pp ppf cls =
  Format.fprintf ppf "%a/%a" Level.pp cls.level Category.pp cls.categories
