type finding =
  | Read_up of Audit.event
  | Write_down of Audit.event
  | Transitive_leak of {
      watermark : Security_class.t;
      event : Audit.event;
    }

type report = {
  scanned : int;
  grants : int;
  findings : finding list;
}

(* Watermarks are tracked per principal — distinct subjects of one
   principal share an information channel (the principal's own state)
   — and per object (by audit name): what flows into an object flows
   out to its later readers, so laundering through an intermediary
   object between principals is caught too. *)
let analyse events =
  let watermarks : (string, Security_class.t) Hashtbl.t = Hashtbl.create 16 in
  let object_marks : (int, Security_class.t) Hashtbl.t = Hashtbl.create 16 in
  let scanned = ref 0 in
  let grants = ref 0 in
  let findings = ref [] in
  let note finding = findings := finding :: !findings in
  let replay (event : Audit.event) =
    incr scanned;
    (* Trusted (TCB) subjects are exempt from the star property by
       definition; their administrative write-downs are not leaks. *)
    if Decision.is_granted event.Audit.decision
       && not (Subject.is_trusted event.Audit.subject)
    then begin
      incr grants;
      let subject_class = Subject.effective_class event.Audit.subject in
      let key = Principal.individual_name (Subject.principal event.Audit.subject) in
      let object_class = event.Audit.object_class in
      if Access_mode.is_read_like event.Audit.mode then begin
        if not (Security_class.dominates subject_class object_class) then
          note (Read_up event);
        (* Observation raises the principal's watermark by everything
           the object's class admits AND everything previously written
           into it. *)
        let incoming =
          match Hashtbl.find_opt object_marks event.Audit.object_id with
          | None -> object_class
          | Some mark -> Security_class.join object_class mark
        in
        let watermark =
          match Hashtbl.find_opt watermarks key with
          | None -> Security_class.join subject_class incoming
          | Some current -> Security_class.join current incoming
        in
        Hashtbl.replace watermarks key watermark
      end
      else begin
        if not (Security_class.dominates object_class subject_class) then
          note (Write_down event);
        let outgoing =
          match Hashtbl.find_opt watermarks key with
          | None -> subject_class
          | Some watermark -> watermark
        in
        if not (Security_class.dominates object_class outgoing) then (
          match Hashtbl.find_opt watermarks key with
          | Some watermark -> note (Transitive_leak { watermark; event })
          | None -> ());
        (* The write taints the object with everything the writer may
           be carrying. *)
        let mark =
          match Hashtbl.find_opt object_marks event.Audit.object_id with
          | None -> Security_class.join object_class outgoing
          | Some mark -> Security_class.join mark outgoing
        in
        Hashtbl.replace object_marks event.Audit.object_id mark
      end
    end
  in
  List.iter replay events;
  { scanned = !scanned; grants = !grants; findings = List.rev !findings }

let analyse_log log = analyse (Audit.events log)
let is_clean report = report.findings = []

let pp_finding ppf = function
  | Read_up event -> Format.fprintf ppf "read-up granted: %a" Audit.pp_event event
  | Write_down event -> Format.fprintf ppf "write-down granted: %a" Audit.pp_event event
  | Transitive_leak { watermark; event } ->
    Format.fprintf ppf "transitive leak (watermark %a): %a" Security_class.pp watermark
      Audit.pp_event event

let pp_report ppf report =
  Format.fprintf ppf "scanned %d event(s), %d grant(s): " report.scanned report.grants;
  match report.findings with
  | [] -> Format.pp_print_string ppf "no flow violations"
  | findings ->
    Format.fprintf ppf "%d violation(s)@." (List.length findings);
    Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_finding ppf findings
