type hierarchy = {
  id : int;
  level_names : string array;  (* highest trust first *)
}

type t = {
  owner : hierarchy;
  rank : int;  (* 0 = lowest trust *)
}

let next_id = ref 0

let hierarchy names =
  if names = [] then invalid_arg "Level.hierarchy: empty";
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Level.hierarchy: duplicate level names";
  incr next_id;
  { id = !next_id; level_names = Array.of_list names }

let names h = Array.to_list h.level_names

let of_name h name =
  let count = Array.length h.level_names in
  let rec find i =
    if i >= count then None
    else if String.equal h.level_names.(i) name then
      Some { owner = h; rank = count - 1 - i }
    else find (i + 1)
  in
  find 0

let of_name_exn h name =
  match of_name h name with
  | Some level -> level
  | None -> invalid_arg (Printf.sprintf "Level.of_name_exn: unknown level %S" name)

let name level = level.owner.level_names.(Array.length level.owner.level_names - 1 - level.rank)
let rank level = level.rank
let top h = { owner = h; rank = Array.length h.level_names - 1 }
let bottom h = { owner = h; rank = 0 }
let same_hierarchy a b = a.owner.id = b.owner.id

let compare a b =
  if not (same_hierarchy a b) then
    invalid_arg "Level.compare: levels from different hierarchies";
  Int.compare a.rank b.rank

let equal a b = same_hierarchy a b && a.rank = b.rank
let dominates a b = compare a b >= 0
let max a b = if dominates a b then a else b
let min a b = if dominates a b then b else a
let pp ppf level = Format.pp_print_string ppf (name level)
