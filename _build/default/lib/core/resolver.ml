type 'a t = {
  monitor : Reference_monitor.t;
  namespace : 'a Namespace.t;
}

let create monitor namespace = { monitor; namespace }
let monitor r = r.monitor
let namespace r = r.namespace

type denial =
  | Denied of { at : Path.t; mode : Access_mode.t; denial : Decision.denial }
  | Name_error of Namespace.error

let pp_denial ppf = function
  | Denied { at; mode; denial } ->
    Format.fprintf ppf "%a (%a): %a" Path.pp at Access_mode.pp mode Decision.pp_denial
      denial
  | Name_error error -> Namespace.pp_error ppf error

let check r ~subject node mode =
  match
    Reference_monitor.check r.monitor ~subject ~meta:(Namespace.meta node)
      ~object_name:(Namespace.label node) ~mode
  with
  | Decision.Granted -> Ok ()
  | Decision.Denied denial ->
    Error (Denied { at = Namespace.path node; mode; denial })

(* Walk to [target], checking [List] on every *interior* node strictly
   above the target.  Returns the target node, unchecked. *)
let walk r ~subject target =
  let rec step node = function
    | [] -> Ok node
    | segment :: rest -> (
      match check r ~subject node Access_mode.List with
      | Error e -> Error e
      | Ok () -> (
        let found =
          List.find_opt
            (fun (name, _) -> String.equal name segment)
            (Namespace.children node)
        in
        match found with
        | None ->
          if Namespace.is_dir node then Error (Name_error (Namespace.Not_found target))
          else Error (Name_error (Namespace.Not_a_directory (Namespace.path node)))
        | Some (_, child) -> step child rest))
  in
  step (Namespace.root r.namespace) (Path.segments target)

let lookup r ~subject target = walk r ~subject target

let resolve r ~subject ~mode target =
  match walk r ~subject target with
  | Error e -> Error e
  | Ok node -> (
    match check r ~subject node mode with
    | Error e -> Error e
    | Ok () -> Ok node)

let list_dir r ~subject target =
  match resolve r ~subject ~mode:Access_mode.List target with
  | Error e -> Error e
  | Ok node ->
    if Namespace.is_dir node then
      Ok (List.map fst (Namespace.children node))
    else Error (Name_error (Namespace.Not_a_directory target))

let parent_of target =
  match Path.parent target with
  | Some parent -> Ok parent
  | None -> Error (Name_error (Namespace.Already_exists Path.root))

let attach_check r ~subject ~parent_node ~child_meta target =
  match
    Reference_monitor.check_attach r.monitor ~subject
      ~parent:(Namespace.meta parent_node) ~child:child_meta
      ~object_name:(Path.to_string target)
  with
  | Decision.Granted -> Ok ()
  | Decision.Denied denial ->
    Error (Denied { at = target; mode = Access_mode.Write; denial })

let create_node r ~subject target ~meta insert =
  match parent_of target with
  | Error e -> Error e
  | Ok parent_path -> (
    match walk r ~subject parent_path with
    | Error e -> Error e
    | Ok parent_node -> (
      match attach_check r ~subject ~parent_node ~child_meta:meta target with
      | Error e -> Error e
      | Ok () -> (
        match insert () with
        | Ok node -> Ok node
        | Error error -> Error (Name_error error))))

let create_dir r ~subject target ~meta =
  create_node r ~subject target ~meta (fun () -> Namespace.add_dir r.namespace target ~meta)

let create_leaf r ~subject target ~meta payload =
  create_node r ~subject target ~meta (fun () ->
      Namespace.add_leaf r.namespace target ~meta payload)

let remove r ~subject target =
  match parent_of target with
  | Error e -> Error e
  | Ok parent_path -> (
    match walk r ~subject parent_path with
    | Error e -> Error e
    | Ok parent_node -> (
      match resolve r ~subject ~mode:Access_mode.Delete target with
      | Error e -> Error e
      | Ok victim -> (
        match
          attach_check r ~subject ~parent_node ~child_meta:(Namespace.meta victim)
            target
        with
        | Error e -> Error e
        | Ok () -> (
          match Namespace.remove r.namespace target with
          | Ok () -> Ok ()
          | Error error -> Error (Name_error error)))))

let set_acl r ~subject target acl =
  match walk r ~subject target with
  | Error e -> Error e
  | Ok node -> (
    match
      Reference_monitor.set_acl r.monitor ~subject ~meta:(Namespace.meta node)
        ~object_name:(Path.to_string target) acl
    with
    | Decision.Granted -> Ok ()
    | Decision.Denied denial ->
      Error (Denied { at = target; mode = Access_mode.Administrate; denial }))

let set_class r ~subject target klass =
  match walk r ~subject target with
  | Error e -> Error e
  | Ok node -> (
    match
      Reference_monitor.set_class r.monitor ~subject ~meta:(Namespace.meta node)
        ~object_name:(Namespace.label node) klass
    with
    | Decision.Granted -> Ok ()
    | Decision.Denied denial ->
      Error (Denied { at = target; mode = Access_mode.Administrate; denial }))
