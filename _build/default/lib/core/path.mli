(** Hierarchical names in the universal name space (paper, section
    2.3).

    A path is a possibly empty sequence of non-empty segments; the
    empty sequence names the root.  The textual form is
    ["/seg/seg/..."], with ["/"] for the root. *)

type t

val root : t
val of_segments : string list -> t
(** @raise Invalid_argument on an empty segment or one containing
    ['/']. *)

val of_string : string -> t
(** Parse ["/a/b/c"]; leading slash optional, repeated slashes
    collapse.  @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val segments : t -> string list
val is_root : t -> bool
val depth : t -> int

val basename : t -> string option
(** Final segment; [None] for the root. *)

val parent : t -> t option
(** Enclosing path; [None] for the root. *)

val child : t -> string -> t
(** Append one segment. @raise Invalid_argument on a bad segment. *)

val append : t -> t -> t
(** [append a b] concatenates. *)

val is_prefix : t -> t -> bool
(** [is_prefix a b] iff [a] is an ancestor of (or equal to) [b]. *)

val prefixes : t -> t list
(** All ancestors from the root to the path itself, inclusive, in
    order: [prefixes /a/b = [/; /a; /a/b]]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
