type denial =
  | Dac_no_entry
  | Dac_explicit_deny of Acl.who
  | Mac_denied of Mac.denial
  | Integrity_denied of Integrity.denial
  | Not_an_object
  | Path_denied of string

type t =
  | Granted
  | Denied of denial

let is_granted = function
  | Granted -> true
  | Denied _ -> false

let equal_denial a b =
  match a, b with
  | Dac_no_entry, Dac_no_entry -> true
  | Dac_explicit_deny wa, Dac_explicit_deny wb -> (
    match wa, wb with
    | Acl.Individual i, Acl.Individual j -> Principal.equal_individual i j
    | Acl.Group g, Acl.Group h -> Principal.equal_group g h
    | Acl.Everyone, Acl.Everyone -> true
    | (Acl.Individual _ | Acl.Group _ | Acl.Everyone), _ -> false)
  | Mac_denied da, Mac_denied db -> da = db
  | Integrity_denied da, Integrity_denied db -> da = db
  | Not_an_object, Not_an_object -> true
  | Path_denied a, Path_denied b -> String.equal a b
  | ( ( Dac_no_entry | Dac_explicit_deny _ | Mac_denied _ | Integrity_denied _
      | Not_an_object | Path_denied _ ),
      _ ) ->
    false

let equal a b =
  match a, b with
  | Granted, Granted -> true
  | Denied da, Denied db -> equal_denial da db
  | (Granted | Denied _), _ -> false

let pp_who ppf = function
  | Acl.Individual ind -> Format.fprintf ppf "user %a" Principal.pp_individual ind
  | Acl.Group grp -> Format.fprintf ppf "group %a" Principal.pp_group grp
  | Acl.Everyone -> Format.pp_print_string ppf "everyone"

let pp_denial ppf = function
  | Dac_no_entry -> Format.pp_print_string ppf "no matching ACL entry"
  | Dac_explicit_deny who -> Format.fprintf ppf "explicit ACL deny for %a" pp_who who
  | Mac_denied denial -> Format.fprintf ppf "MAC: %a" Mac.pp_denial denial
  | Integrity_denied denial -> Format.fprintf ppf "integrity: %a" Integrity.pp_denial denial
  | Not_an_object -> Format.pp_print_string ppf "no such object"
  | Path_denied node -> Format.fprintf ppf "traversal refused at %s" node

let pp ppf = function
  | Granted -> Format.pp_print_string ppf "granted"
  | Denied denial -> Format.fprintf ppf "denied (%a)" pp_denial denial

let to_result = function
  | Granted -> Ok ()
  | Denied denial -> Error denial

let of_result = function
  | Ok () -> Granted
  | Error denial -> Denied denial
