(** Security classes: the product lattice of a trust level and a
    category set (paper, section 2.2; after Bell-LaPadula and
    Denning's lattice model of secure information flow).

    [a] {e dominates} [b] when [a]'s level is at least [b]'s and [a]'s
    categories are a superset of [b]'s.  Dominance is a partial order;
    [join]/[meet] give least upper and greatest lower bounds, so
    classes over one (hierarchy, universe) pair form a lattice. *)

type t = {
  level : Level.t;
  categories : Category.t;
}

val make : Level.t -> Category.t -> t
val level : t -> Level.t
val categories : t -> Category.t

val dominates : t -> t -> bool
(** @raise Invalid_argument when the classes mix hierarchies or
    universes. *)

val equal : t -> t -> bool
val comparable : t -> t -> bool
(** [true] iff one of the two dominates the other. *)

val join : t -> t -> t
(** Least upper bound: max level, union of categories. *)

val meet : t -> t -> t
(** Greatest lower bound: min level, intersection of categories. *)

val top : Level.hierarchy -> Category.universe -> t
val bottom : Level.hierarchy -> Category.universe -> t
val pp : Format.formatter -> t -> unit
