(** Reference-monitor policy configuration.

    The paper's model layers discretionary control (section 2.1) and
    mandatory control (section 2.2); a request must pass {e both}
    enabled layers.  The knobs here exist so the experiments can
    ablate each layer and so the strict-overwrite remark of section
    2.2 can be exercised. *)

type t = {
  dac : bool;  (** evaluate access control lists *)
  mac : bool;  (** evaluate the security-class lattice rules *)
  integrity : bool;
      (** evaluate Biba integrity rules on objects and subjects that
          carry integrity labels (unlabelled ones are always exempt) *)
  overwrite : Mac.overwrite_rule;
      (** how plain [Write]/[Delete] interact with unequal classes *)
  recheck_calls : bool;
      (** when [true] the kernel re-validates [Execute] on every
          service invocation instead of only at link time (SPIN checks
          only at link time; rechecking gives immediate revocation) *)
}

val default : t
(** DAC, MAC and integrity on, strict overwrite, link-time-only call
    checks. *)

val no_integrity : t
(** {!default} with the Biba layer off. *)

val dac_only : t
val mac_only : t
val unchecked : t
(** Both layers off — the "no protection" baseline for benchmarks. *)

val with_recheck : t -> t
val pp : Format.formatter -> t -> unit
