(** Principal clearances and session establishment.

    The paper lists "the authentication of extensions (and
    principals)" among the concerns its model depends on but does not
    develop (section 1).  This module supplies the minimal mechanism
    the rest of the system needs: a registry recording each
    principal's {e maximum} security class (clearance), optional
    integrity class and trust bit, plus a secret for authentication —
    and a [login] that mints {!Subject.t} values, enforcing that a
    session never starts above its principal's clearance.

    Subjects obtained here are the only sanctioned way to act in a
    deployment that uses the registry; constructing subjects directly
    remains possible for tests and embedders, exactly as a kernel can
    always fabricate credentials. *)

type t

type error =
  | Unknown_principal of Principal.individual
  | Bad_secret
  | Above_clearance of {
      requested : Security_class.t;
      clearance : Security_class.t;
    }  (** the requested session class is not dominated by the
           registered clearance *)

val pp_error : Format.formatter -> error -> unit

val create : unit -> t

val register :
  t ->
  ?secret:string ->
  ?integrity:Security_class.t ->
  ?trusted:bool ->
  Principal.individual ->
  Security_class.t ->
  unit
(** Record (or replace) a principal's clearance.  [secret] (stored as
    a digest, never in the clear) enables {!authenticate}; without one
    only {!login} works.  [trusted] marks TCB principals. *)

val revoke : t -> Principal.individual -> unit
(** Forget the principal; subsequent logins fail.  Already-issued
    subjects are unaffected — revocation of outstanding authority is
    the ACL/recheck machinery's job. *)

val clearance_of : t -> Principal.individual -> Security_class.t option

type detail = {
  clearance : Security_class.t;
  integrity : Security_class.t option;
  trusted : bool;
}

val detail_of : t -> Principal.individual -> detail option
(** Everything registered about a principal except its secret. *)

val is_registered : t -> Principal.individual -> bool

val registered : t -> Principal.individual list
(** Sorted by name. *)

val login :
  t -> ?at:Security_class.t -> Principal.individual -> (Subject.t, error) result
(** Start a session.  [at] requests a session class below the
    clearance (a high-cleared user working low, standard MLS
    practice); default is the full clearance. *)

val authenticate :
  t -> secret:string -> ?at:Security_class.t -> Principal.individual ->
  (Subject.t, error) result
(** {!login} gated on the registered secret.  Principals registered
    without a secret always fail with [Bad_secret]. *)
