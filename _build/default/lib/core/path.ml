type t = string list

let root = []

let check_segment segment =
  if String.length segment = 0 then invalid_arg "Path: empty segment";
  if String.contains segment '/' then invalid_arg "Path: segment contains '/'"

let of_segments segments =
  List.iter check_segment segments;
  segments

let of_string text =
  String.split_on_char '/' text |> List.filter (fun segment -> String.length segment > 0)

let to_string = function
  | [] -> "/"
  | segments -> "/" ^ String.concat "/" segments

let segments path = path
let is_root path = path = []
let depth = List.length

let basename path =
  match List.rev path with
  | [] -> None
  | last :: _ -> Some last

let parent path =
  match List.rev path with
  | [] -> None
  | _ :: rev_init -> Some (List.rev rev_init)

let child path segment =
  check_segment segment;
  path @ [ segment ]

let append a b = a @ b

let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> String.equal x y && is_prefix a' b'

let prefixes path =
  let step (current, acc) segment =
    let next = current @ [ segment ] in
    next, next :: acc
  in
  let _, acc = List.fold_left step ([], [ [] ]) path in
  List.rev acc

let equal = List.equal String.equal
let compare = List.compare String.compare
let pp ppf path = Format.pp_print_string ppf (to_string path)
