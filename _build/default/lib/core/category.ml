type universe = {
  id : int;
  category_names : string array;
}

type t = {
  owner : universe;
  bits : int;  (* bit i set iff category_names.(i) is present *)
}

let next_id = ref 0

let universe names =
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Category.universe: duplicate category names";
  if List.exists (fun name -> String.length name = 0) names then
    invalid_arg "Category.universe: empty category name";
  if List.length names > Sys.int_size - 1 then
    invalid_arg "Category.universe: too many categories";
  incr next_id;
  { id = !next_id; category_names = Array.of_list names }

let universe_names u = Array.to_list u.category_names
let universe_size u = Array.length u.category_names
let empty u = { owner = u; bits = 0 }
let full u = { owner = u; bits = (1 lsl Array.length u.category_names) - 1 }

let index_of u name =
  let count = Array.length u.category_names in
  let rec find i =
    if i >= count then None
    else if String.equal u.category_names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let of_names u selected =
  let add bits name =
    match index_of u name with
    | Some i -> bits lor (1 lsl i)
    | None -> invalid_arg (Printf.sprintf "Category.of_names: unknown category %S" name)
  in
  { owner = u; bits = List.fold_left add 0 selected }

let mem set name =
  match index_of set.owner name with
  | Some i -> set.bits land (1 lsl i) <> 0
  | None -> false

let names set =
  List.filter (mem set) (universe_names set.owner)

let cardinal set =
  let rec count bits acc = if bits = 0 then acc else count (bits lsr 1) (acc + (bits land 1)) in
  count set.bits 0

let same_universe a b = a.owner.id = b.owner.id

let require_same_universe fn a b =
  if not (same_universe a b) then
    invalid_arg (Printf.sprintf "Category.%s: sets from different universes" fn)

let subset a b =
  require_same_universe "subset" a b;
  a.bits land lnot b.bits = 0

let equal a b = same_universe a b && a.bits = b.bits

let union a b =
  require_same_universe "union" a b;
  { owner = a.owner; bits = a.bits lor b.bits }

let inter a b =
  require_same_universe "inter" a b;
  { owner = a.owner; bits = a.bits land b.bits }

let pp ppf set =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (names set)
