let read_ok ~subject ~object_ = Security_class.dominates object_ subject
let write_ok ~subject ~object_ = Security_class.dominates subject object_

type denial =
  | Read_down
  | Write_up

let check ~subject ~object_ mode =
  if Access_mode.is_read_like mode then
    if read_ok ~subject ~object_ then Ok () else Error Read_down
  else if write_ok ~subject ~object_ then Ok ()
  else Error Write_up

let permits ~subject ~object_ mode =
  match check ~subject ~object_ mode with
  | Ok () -> true
  | Error _ -> false

let pp_denial ppf = function
  | Read_down ->
    Format.pp_print_string ppf "read-down (object integrity does not dominate subject)"
  | Write_up ->
    Format.pp_print_string ppf "write-up (subject integrity does not dominate object)"
