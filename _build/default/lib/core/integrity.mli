(** Biba-style integrity control — the dual of the confidentiality
    lattice.

    The paper bases its mandatory access control "on the lattice model
    of information flow [1, 5, 3]", where [3] is Biba's {e Integrity
    Considerations for Secure Computer Systems}: confidentiality keeps
    secrets from flowing down, integrity keeps corruption from flowing
    up.  Under the strict integrity policy a subject may {e observe}
    only objects of equal or higher integrity (no read-down: garbage
    in, garbage out) and {e modify} only objects of equal or lower
    integrity (no write-up: a low-integrity extension cannot taint a
    high-integrity service).

    Integrity classes reuse {!Security_class.t} over their own
    hierarchy/universe; the rules here are exactly the mirror image of
    {!Mac}.  The reference monitor applies them when both subject and
    object carry integrity labels (see {!Meta.t} and {!Subject}). *)

val read_ok : subject:Security_class.t -> object_:Security_class.t -> bool
(** No read-down: the object's integrity must dominate the
    subject's. *)

val write_ok : subject:Security_class.t -> object_:Security_class.t -> bool
(** No write-up: the subject's integrity must dominate the
    object's. *)

type denial =
  | Read_down  (** observing a lower-integrity object *)
  | Write_up  (** modifying a higher-integrity object *)

val check :
  subject:Security_class.t ->
  object_:Security_class.t ->
  Access_mode.t ->
  (unit, denial) result
(** Apply {!read_ok} to read-like modes and {!write_ok} to write-like
    modes (classification per {!Access_mode.is_read_like}). *)

val permits :
  subject:Security_class.t -> object_:Security_class.t -> Access_mode.t -> bool

val pp_denial : Format.formatter -> denial -> unit
