open Exsec_core

type provided = {
  at : string;
  arity : int;
  body : Service.impl;
}

type extends = {
  event : Path.t;
  guard : (Value.t list -> bool) option;
  handler_body : Service.impl;
}

type t = {
  ext_name : string;
  author : Principal.individual;
  static_class : Security_class.t option;
  imports : Path.t list;
  import_domains : Domain.t list;
  provides : provided list;
  extends : extends list;
  init : (Service.ctx -> (unit, Service.error) result) option;
}

let make ~name ~author ?static_class ?(imports = []) ?(import_domains = [])
    ?(provides = []) ?(extends = []) ?init () =
  if String.length name = 0 then invalid_arg "Extension.make: empty name";
  { ext_name = name; author; static_class; imports; import_domains; provides; extends; init }

let provided at arity body = { at; arity; body }
let extends ?guard event handler_body = { event; guard; handler_body }

let pp ppf ext =
  Format.fprintf ppf "extension %s (author %a%t): %d import(s), %d provide(s), %d extend(s)"
    ext.ext_name Principal.pp_individual ext.author
    (fun ppf ->
      match ext.static_class with
      | None -> ()
      | Some klass -> Format.fprintf ppf ", pinned at %a" Security_class.pp klass)
    (List.length ext.imports) (List.length ext.provides) (List.length ext.extends)
