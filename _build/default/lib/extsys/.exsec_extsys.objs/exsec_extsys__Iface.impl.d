lib/extsys/iface.ml: Exsec_core Format List Path Printf String
