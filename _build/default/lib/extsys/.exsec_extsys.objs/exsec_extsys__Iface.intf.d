lib/extsys/iface.mli: Exsec_core Format Path
