lib/extsys/extension.ml: Domain Exsec_core Format List Path Principal Security_class Service String Value
