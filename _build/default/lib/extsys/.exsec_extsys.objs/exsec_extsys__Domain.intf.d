lib/extsys/domain.mli: Exsec_core Format Path
