lib/extsys/dispatcher.mli: Exsec_core Path Security_class Service Value
