lib/extsys/domain.ml: Exsec_core Format List Path
