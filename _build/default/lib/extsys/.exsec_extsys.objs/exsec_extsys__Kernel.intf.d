lib/extsys/kernel.mli: Category Dispatcher Exsec_core Extension Iface Level Meta Namespace Path Policy Principal Quota Reference_monitor Resolver Sched Security_class Service Subject Thread Value
