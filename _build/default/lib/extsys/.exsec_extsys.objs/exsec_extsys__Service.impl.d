lib/extsys/service.ml: Access_mode Decision Exsec_core Format List Path Subject Value
