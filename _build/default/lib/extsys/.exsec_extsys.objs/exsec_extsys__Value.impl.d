lib/extsys/value.ml: Bool Bytes Format Int List Printf String
