lib/extsys/thread.mli: Exsec_core Format Meta Subject
