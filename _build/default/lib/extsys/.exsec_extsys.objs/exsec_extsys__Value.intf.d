lib/extsys/value.mli: Format
