lib/extsys/extension.mli: Domain Exsec_core Format Path Principal Security_class Service Value
