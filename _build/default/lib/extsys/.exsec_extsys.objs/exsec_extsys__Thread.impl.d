lib/extsys/thread.ml: Exsec_core Format Meta Subject
