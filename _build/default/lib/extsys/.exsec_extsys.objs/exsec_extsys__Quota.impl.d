lib/extsys/quota.ml: Exsec_core Format Hashtbl Option Principal
