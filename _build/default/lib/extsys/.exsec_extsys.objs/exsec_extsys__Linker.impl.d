lib/extsys/linker.ml: Access_mode Acl Dispatcher Domain Exsec_core Extension Format Kernel List Meta Namespace Path Policy Principal Quota Reference_monitor Resolver Result Service Subject
