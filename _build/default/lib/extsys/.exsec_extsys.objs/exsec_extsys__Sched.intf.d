lib/extsys/sched.mli: Thread
