lib/extsys/service.mli: Access_mode Decision Exsec_core Format Path Subject Value
