lib/extsys/sched.ml: List Thread
