lib/extsys/linker.mli: Exsec_core Extension Format Kernel Path Service Subject Value
