lib/extsys/quota.mli: Exsec_core Format Principal
