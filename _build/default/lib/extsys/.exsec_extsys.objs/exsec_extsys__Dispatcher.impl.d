lib/extsys/dispatcher.ml: Array Exsec_core Hashtbl List Path Security_class Service Stdlib String Value
