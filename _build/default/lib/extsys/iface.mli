(** Interface descriptions.

    An interface names a coherent group of procedures — a Modula-3
    interface in SPIN, a Java class in Java.  Interfaces occupy
    interior nodes of the universal name space; their procedures are
    the leaves below them (paper, section 2.3). *)

open Exsec_core

type proc_sig = {
  name : string;
  arity : int;  (** [-1] means variadic *)
}

type t = {
  iface_name : string;
  procs : proc_sig list;
}

val make : string -> proc_sig list -> t
(** @raise Invalid_argument on duplicate procedure names. *)

val proc_sig : string -> int -> proc_sig

val find_proc : t -> string -> proc_sig option

val paths : mount:Path.t -> t -> Path.t list
(** The name-space paths of the interface's procedures when the
    interface directory itself is mounted at [mount]: one
    [mount/name] per procedure. *)

val pp : Format.formatter -> t -> unit
