(** Simulated threads of control.

    Threads serve as the {e subjects} of the access-control model
    (paper, section 2.2): each carries a {!Exsec_core.Subject.t} and
    functions at the security class of its principal.  Threads are
    also {e objects}: each is published in the universal name space
    (under [/threads]) with its own metadata, so operations {e on} a
    thread — killing it, inspecting it — are themselves access
    controlled.  That is exactly the control the Java sandbox lacked
    in the ThreadMurder incident (paper, section 1.2).

    Scheduling is cooperative: the scheduler calls the thread's body
    once per quantum until it reports [Finished]. *)

open Exsec_core

type status =
  | Runnable  (** wants more quanta *)
  | Finished  (** ran to completion *)

type state =
  | Ready
  | Done  (** body reported [Finished] *)
  | Killed  (** forcibly terminated *)

type t

val make :
  id:int -> name:string -> subject:Subject.t -> meta:Meta.t ->
  body:(unit -> status) -> t

val id : t -> int
val name : t -> string
val subject : t -> Subject.t
val meta : t -> Meta.t
val state : t -> state
val is_alive : t -> bool

val quanta : t -> int
(** Number of quanta the thread has executed. *)

val step : t -> unit
(** Run one quantum if the thread is [Ready]; otherwise no effect. *)

val kill : t -> unit
(** Unchecked forcible termination — callers must clear the kill with
    the reference monitor first (the kernel's [kill] does). *)

val pp : Format.formatter -> t -> unit
