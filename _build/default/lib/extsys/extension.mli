(** Extension descriptions: the units of code that are dynamically
    loaded and linked into the base system (paper, section 1.1).

    An extension declares the two ways it will interact with the rest
    of the system — the service procedures it {e imports} (calls on)
    and the events it {e extends} (specializes) — plus any new
    procedures it {e provides}.  The linker checks [Execute] access on
    every import and [Extend] access on every extended event before
    the extension becomes part of the system.

    An extension may carry a {e static security class} (paper, section
    2.2): when its code runs, the thread's effective class is capped
    by that class, so an untrusted extension cannot exercise the full
    authority of a trusted caller. *)

open Exsec_core

type provided = {
  at : string;  (** leaf name under the extension's own directory *)
  arity : int;
  body : Service.impl;
}

type extends = {
  event : Path.t;  (** the event (extensible procedure) specialized *)
  guard : (Value.t list -> bool) option;
  handler_body : Service.impl;
}

type t = {
  ext_name : string;  (** unique name; also its directory under /ext *)
  author : Principal.individual;  (** the principal the code came from *)
  static_class : Security_class.t option;
      (** cap on the effective class of threads running this code *)
  imports : Path.t list;  (** procedures the extension calls *)
  import_domains : Domain.t list;
      (** SPIN-style: link against whole domains; the linker expands
          each domain to the procedures under its interface mount
          points, each still individually checked for [Execute] *)
  provides : provided list;
  extends : extends list;
  init : (Service.ctx -> (unit, Service.error) result) option;
      (** run once, after successful linking *)
}

val make :
  name:string ->
  author:Principal.individual ->
  ?static_class:Security_class.t ->
  ?imports:Path.t list ->
  ?import_domains:Domain.t list ->
  ?provides:provided list ->
  ?extends:extends list ->
  ?init:(Service.ctx -> (unit, Service.error) result) ->
  unit ->
  t

val provided : string -> int -> Service.impl -> provided
val extends : ?guard:(Value.t list -> bool) -> Path.t -> Service.impl -> extends
val pp : Format.formatter -> t -> unit
