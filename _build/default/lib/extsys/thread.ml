open Exsec_core

type status =
  | Runnable
  | Finished

type state =
  | Ready
  | Done
  | Killed

type t = {
  id : int;
  thread_name : string;
  subject : Subject.t;
  meta : Meta.t;
  body : unit -> status;
  mutable state : state;
  mutable quanta : int;
}

let make ~id ~name ~subject ~meta ~body =
  { id; thread_name = name; subject; meta; body; state = Ready; quanta = 0 }

let id thread = thread.id
let name thread = thread.thread_name
let subject thread = thread.subject
let meta thread = thread.meta
let state thread = thread.state

let is_alive thread =
  match thread.state with
  | Ready -> true
  | Done | Killed -> false

let quanta thread = thread.quanta

let step thread =
  match thread.state with
  | Done | Killed -> ()
  | Ready -> (
    thread.quanta <- thread.quanta + 1;
    match thread.body () with
    | Runnable -> ()
    | Finished -> thread.state <- Done)

let kill thread =
  match thread.state with
  | Done | Killed -> ()
  | Ready -> thread.state <- Killed

let pp ppf thread =
  Format.fprintf ppf "thread %d (%s, %a, %s)" thread.id thread.thread_name Subject.pp
    thread.subject
    (match thread.state with Ready -> "ready" | Done -> "done" | Killed -> "killed")
