open Exsec_core

type limits = {
  max_calls : int option;
  max_threads : int option;
  max_extensions : int option;
}

let unlimited = { max_calls = None; max_threads = None; max_extensions = None }
let calls n = { unlimited with max_calls = Some n }

type entry = {
  limits : limits;
  mutable used_calls : int;
}

type t = { table : (string, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 8 }

let set quota ind limits =
  Hashtbl.replace quota.table (Principal.individual_name ind) { limits; used_calls = 0 }

let clear quota ind = Hashtbl.remove quota.table (Principal.individual_name ind)

let find quota ind = Hashtbl.find_opt quota.table (Principal.individual_name ind)

let limits_of quota ind = Option.map (fun e -> e.limits) (find quota ind)

type resource =
  | Calls
  | Threads
  | Extensions

type denial = {
  principal : Principal.individual;
  resource : resource;
  limit : int;
}

let resource_name = function
  | Calls -> "call"
  | Threads -> "thread"
  | Extensions -> "extension"

let pp_denial ppf { principal; resource; limit } =
  Format.fprintf ppf "%a exceeded its %s quota (%d)" Principal.pp_individual principal
    (resource_name resource) limit

let charge_call quota ind =
  match find quota ind with
  | None -> Ok ()
  | Some entry -> (
    match entry.limits.max_calls with
    | None -> Ok ()
    | Some limit ->
      if entry.used_calls >= limit then
        Error { principal = ind; resource = Calls; limit }
      else begin
        entry.used_calls <- entry.used_calls + 1;
        Ok ()
      end)

let calls_used quota ind =
  match find quota ind with
  | None -> 0
  | Some entry -> entry.used_calls

let check_bound quota ind ~current resource pick =
  match find quota ind with
  | None -> Ok ()
  | Some entry -> (
    match pick entry.limits with
    | None -> Ok ()
    | Some limit ->
      if current >= limit then Error { principal = ind; resource; limit } else Ok ())

let check_threads quota ind ~live =
  check_bound quota ind ~current:live Threads (fun l -> l.max_threads)

let check_extensions quota ind ~loaded =
  check_bound quota ind ~current:loaded Extensions (fun l -> l.max_extensions)
