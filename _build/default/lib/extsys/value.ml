type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Blob of bytes
  | Pair of t * t
  | List of t list

exception Type_error of string

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let blob b = Blob b
let pair a b = Pair (a, b)
let list items = List items

let constructor_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Str _ -> "str"
  | Blob _ -> "blob"
  | Pair _ -> "pair"
  | List _ -> "list"

let to_bool = function
  | Bool b -> Some b
  | Unit | Int _ | Str _ | Blob _ | Pair _ | List _ -> None

let to_int = function
  | Int i -> Some i
  | Unit | Bool _ | Str _ | Blob _ | Pair _ | List _ -> None

let to_str = function
  | Str s -> Some s
  | Unit | Bool _ | Int _ | Blob _ | Pair _ | List _ -> None

let to_blob = function
  | Blob b -> Some b
  | Unit | Bool _ | Int _ | Str _ | Pair _ | List _ -> None

let to_pair = function
  | Pair (a, b) -> Some (a, b)
  | Unit | Bool _ | Int _ | Str _ | Blob _ | List _ -> None

let to_list = function
  | List items -> Some items
  | Unit | Bool _ | Int _ | Str _ | Blob _ | Pair _ -> None

let expect kind convert value =
  match convert value with
  | Some result -> result
  | None ->
    raise (Type_error (Printf.sprintf "expected %s, got %s" kind (constructor_name value)))

let to_bool_exn value = expect "bool" to_bool value
let to_int_exn value = expect "int" to_int value
let to_str_exn value = expect "str" to_str value
let to_blob_exn value = expect "blob" to_blob value
let to_pair_exn value = expect "pair" to_pair value
let to_list_exn value = expect "list" to_list value

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Blob x, Blob y -> Bytes.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys -> List.equal equal xs ys
  | (Unit | Bool _ | Int _ | Str _ | Blob _ | Pair _ | List _), _ -> false

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.fprintf ppf "%S" s
  | Blob b -> Format.fprintf ppf "<blob:%d>" (Bytes.length b)
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List items ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
      items
