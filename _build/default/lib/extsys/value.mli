(** Dynamically typed values exchanged across service calls.

    Extensions and the base system are separately written code units;
    calls between them cross the kernel, so arguments and results use
    a small universal value type, the moral equivalent of the
    marshalled arguments of a SPIN event or a Java reflective call. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Blob of bytes
  | Pair of t * t
  | List of t list

exception Type_error of string
(** Raised by the [*_exn] accessors on a mismatched constructor. *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val blob : bytes -> t
val pair : t -> t -> t
val list : t list -> t

val to_bool : t -> bool option
val to_int : t -> int option
val to_str : t -> string option
val to_blob : t -> bytes option
val to_pair : t -> (t * t) option
val to_list : t -> t list option

val to_bool_exn : t -> bool
val to_int_exn : t -> int
val to_str_exn : t -> string
val to_blob_exn : t -> bytes
val to_pair_exn : t -> t * t
val to_list_exn : t -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
