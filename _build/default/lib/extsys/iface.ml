open Exsec_core

type proc_sig = {
  name : string;
  arity : int;
}

type t = {
  iface_name : string;
  procs : proc_sig list;
}

let proc_sig name arity = { name; arity }

let make iface_name procs =
  let names = List.map (fun p -> p.name) procs in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg (Printf.sprintf "Iface.make: duplicate procedure in %s" iface_name);
  { iface_name; procs }

let find_proc iface name =
  List.find_opt (fun p -> String.equal p.name name) iface.procs

let paths ~mount iface = List.map (fun p -> Path.child mount p.name) iface.procs

let pp ppf iface =
  Format.fprintf ppf "%s{%a}" iface.iface_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf p -> Format.fprintf ppf "%s/%d" p.name p.arity))
    iface.procs
