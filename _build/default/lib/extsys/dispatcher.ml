open Exsec_core

type handler = {
  owner : string;
  klass : Security_class.t;
  guard : (Value.t list -> bool) option;
  impl : Service.impl;
}

type t = { table : (string, handler list ref) Hashtbl.t }
(* Keyed by the rendered path; values keep registration order. *)

let create () = { table = Hashtbl.create 16 }

let key event = Path.to_string event

let register d ~event handler =
  let k = key event in
  match Hashtbl.find_opt d.table k with
  | Some slot -> slot := !slot @ [ handler ]
  | None -> Hashtbl.add d.table k (ref [ handler ])

let unregister_owner d owner =
  Hashtbl.iter
    (fun _ slot -> slot := List.filter (fun h -> not (String.equal h.owner owner)) !slot)
    d.table

let handlers d ~event =
  match Hashtbl.find_opt d.table (key event) with
  | Some slot -> !slot
  | None -> []

let events d =
  Hashtbl.fold
    (fun k slot acc -> if !slot = [] then acc else Path.of_string k :: acc)
    d.table []
  |> List.sort Path.compare

let guard_accepts handler args =
  match handler.guard with
  | None -> true
  | Some guard -> guard args

let eligible d ~event ~caller_class ~args =
  List.filter
    (fun h -> Security_class.dominates caller_class h.klass && guard_accepts h args)
    (handlers d ~event)

let strictly_dominates a b =
  Security_class.dominates a b && not (Security_class.equal a b)

(* Order by decreasing specificity.  Dominance is a partial order, so
   sorting with a comparator is unsound (a mergesort can leave a
   dominated handler ahead of its dominator when incomparable elements
   keep them from ever being compared — found by the qcheck maximality
   property).  Instead, rank each handler by the length of the longest
   chain of strict dominators above it (its dominance layer, memoized,
   O(n^2) dominance checks) and sort by (layer, registration index):
   layer 0 holds the maximal handlers, and a dominator always precedes
   everything it dominates. *)
let select_all d ~event ~caller_class ~args =
  let handlers = Array.of_list (eligible d ~event ~caller_class ~args) in
  let n = Array.length handlers in
  let layer = Array.make n (-1) in
  let rec layer_of i =
    if layer.(i) >= 0 then layer.(i)
    else begin
      (* Strict dominance is acyclic, so marking before the scan is
         only a guard; it is never read back on valid input. *)
      layer.(i) <- 0;
      let deepest = ref 0 in
      for j = 0 to n - 1 do
        if j <> i && strictly_dominates handlers.(j).klass handlers.(i).klass then
          deepest := Stdlib.max !deepest (layer_of j + 1)
      done;
      layer.(i) <- !deepest;
      !deepest
    end
  in
  let ranked = List.init n (fun i -> layer_of i, i) in
  List.sort compare ranked |> List.map (fun (_, i) -> handlers.(i))

(* One forward pass suffices for a single maximal element: the
   candidate is only replaced by a handler that strictly dominates it,
   and dominance is transitive, so nothing earlier can dominate the
   survivor (and nothing later did).  Registration order breaks ties
   exactly as in select_all. *)
let select d ~event ~caller_class ~args =
  List.fold_left
    (fun candidate h ->
      match candidate with
      | None -> Some h
      | Some best ->
        if strictly_dominates h.klass best.klass then Some h else candidate)
    None
    (eligible d ~event ~caller_class ~args)

let handler_count d =
  Hashtbl.fold (fun _ slot n -> n + List.length !slot) d.table 0
