(** SPIN-style domains: named collections of interfaces (paper,
    section 1.2, citing Sirer et al.).

    A domain groups interface mount points so extensions can be
    linked against a set of services at once and so a flat global
    name space is avoided.  In the paper's model, domains are interior
    nodes of the universal name space and therefore carry their own
    protection; this module only describes domain {e membership} —
    the name-space nodes carry the ACLs. *)

open Exsec_core

type t = {
  domain_name : string;
  interfaces : Path.t list;  (** mount points of the member interfaces *)
}

val make : string -> Path.t list -> t
val name : t -> string
val interfaces : t -> Path.t list

val member : t -> Path.t -> bool
(** [member d p] iff [p] lies under one of the domain's interface
    mount points (or is one). *)

val union : string -> t list -> t
(** Combine several domains under a new name. *)

val pp : Format.formatter -> t -> unit
