(** The event dispatcher: dynamic binding of extensions to the
    services they specialize (after Pardyak & Bershad's SPIN
    dispatcher, extended with the paper's class-indexed selection).

    Every extensible service procedure doubles as an {e event}.
    Extensions register {e handlers} on an event; a handler carries
    the static security class of its extension and an optional guard
    predicate over the arguments.  When the event is raised, the
    dispatcher considers only handlers whose class the caller's
    effective class {e dominates} — "the right extension is selected
    based on the security class of the caller" (paper, section 2.2) —
    and among those picks the handler with the most specific
    (greatest) class whose guard accepts the arguments.  Ties fall to
    registration order. *)

open Exsec_core

type handler = {
  owner : string;  (** name of the extension that registered it *)
  klass : Security_class.t;  (** the handler's static class *)
  guard : (Value.t list -> bool) option;
  impl : Service.impl;
}

type t

val create : unit -> t

val register : t -> event:Path.t -> handler -> unit
(** Handlers accumulate in registration order. *)

val unregister_owner : t -> string -> unit
(** Drop every handler a given extension registered (unload). *)

val handlers : t -> event:Path.t -> handler list

val events : t -> Path.t list
(** Every event with at least one handler, sorted. *)

val select :
  t -> event:Path.t -> caller_class:Security_class.t -> args:Value.t list ->
  handler option
(** The single handler that will run for this caller, per the rules
    above. *)

val select_all :
  t -> event:Path.t -> caller_class:Security_class.t -> args:Value.t list ->
  handler list
(** Every eligible handler, most specific class first — for broadcast
    events where all interested extensions observe the event. *)

val handler_count : t -> int
