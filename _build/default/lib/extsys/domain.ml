open Exsec_core

type t = {
  domain_name : string;
  interfaces : Path.t list;
}

let make domain_name interfaces = { domain_name; interfaces }
let name d = d.domain_name
let interfaces d = d.interfaces

let member d p = List.exists (fun mount -> Path.is_prefix mount p) d.interfaces

let union domain_name domains =
  let interfaces =
    List.concat_map (fun d -> d.interfaces) domains
    |> List.sort_uniq Path.compare
  in
  { domain_name; interfaces }

let pp ppf d =
  Format.fprintf ppf "domain %s: %a" d.domain_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Path.pp)
    d.interfaces
