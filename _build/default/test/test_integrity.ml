open Exsec_core

let check = Alcotest.(check bool)

let std () =
  let hierarchy = Level.hierarchy [ "system"; "operator"; "untrusted" ] in
  let universe = Category.universe [ "i" ] in
  hierarchy, universe

let cls hierarchy universe level cats =
  Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)

let test_no_read_down () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "system" [] in
  let low = cls hierarchy universe "untrusted" [] in
  check "high reads high" true (Integrity.read_ok ~subject:high ~object_:high);
  check "low reads high" true (Integrity.read_ok ~subject:low ~object_:high);
  check "high reads low denied" false (Integrity.read_ok ~subject:high ~object_:low)

let test_no_write_up () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "system" [] in
  let low = cls hierarchy universe "untrusted" [] in
  check "high writes low" true (Integrity.write_ok ~subject:high ~object_:low);
  check "low writes high denied" false (Integrity.write_ok ~subject:low ~object_:high)

let test_check_reasons () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "system" [] in
  let low = cls hierarchy universe "untrusted" [] in
  (match Integrity.check ~subject:high ~object_:low Access_mode.Read with
  | Error Integrity.Read_down -> ()
  | _ -> Alcotest.fail "expected Read_down");
  match Integrity.check ~subject:low ~object_:high Access_mode.Write with
  | Error Integrity.Write_up -> ()
  | _ -> Alcotest.fail "expected Write_up"

let test_duality_with_mac () =
  (* Integrity is exactly MAC with subject and object swapped. *)
  let hierarchy, universe = std () in
  let classes =
    [
      cls hierarchy universe "system" [ "i" ];
      cls hierarchy universe "operator" [];
      cls hierarchy universe "untrusted" [ "i" ];
    ]
  in
  List.iter
    (fun subject ->
      List.iter
        (fun object_ ->
          check "read duality" true
            (Integrity.read_ok ~subject ~object_ = Mac.write_ok ~subject ~object_);
          check "write duality" true
            (Integrity.write_ok ~subject ~object_ = Mac.read_ok ~subject ~object_))
        classes)
    classes

let monitor_setup () =
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let alice = Principal.individual "alice" in
  Principal.Db.add_individual db alice;
  hierarchy, universe, db, alice

let open_acl =
  Acl.of_entries
    [ Acl.allow Acl.Everyone [ Access_mode.Read; Access_mode.Write; Access_mode.Write_append ] ]

let test_monitor_applies_integrity () =
  let hierarchy, universe, db, alice = monitor_setup () in
  let monitor = Reference_monitor.create db in
  (* Confidentiality flat (same class everywhere) so only Biba acts. *)
  let conf = Security_class.bottom hierarchy universe in
  let i_high = cls hierarchy universe "system" [] in
  let i_low = cls hierarchy universe "untrusted" [] in
  let subject = Subject.make ~integrity:i_low alice conf in
  let high_obj = Meta.make ~owner:alice ~acl:open_acl ~integrity:i_high conf in
  let low_obj = Meta.make ~owner:alice ~acl:open_acl ~integrity:i_low conf in
  (* A low-integrity subject cannot taint a high-integrity object. *)
  (match Reference_monitor.decide monitor ~subject ~meta:high_obj ~mode:Access_mode.Write with
  | Decision.Denied (Decision.Integrity_denied Integrity.Write_up) -> ()
  | other -> Alcotest.failf "expected write-up denial, got %s" (Format.asprintf "%a" Decision.pp other));
  (* It can read it (good data flows down). *)
  check "read high-integrity ok" true
    (Decision.is_granted (Reference_monitor.decide monitor ~subject ~meta:high_obj ~mode:Access_mode.Read));
  (* A high-integrity subject does not consume low-integrity input. *)
  let high_subject = Subject.make ~integrity:i_high alice conf in
  (match Reference_monitor.decide monitor ~subject:high_subject ~meta:low_obj ~mode:Access_mode.Read with
  | Decision.Denied (Decision.Integrity_denied Integrity.Read_down) -> ()
  | _ -> Alcotest.fail "expected read-down denial");
  check "write low from high ok" true
    (Decision.is_granted
       (Reference_monitor.decide monitor ~subject:high_subject ~meta:low_obj ~mode:Access_mode.Write))

let test_unlabelled_exempt () =
  let hierarchy, universe, db, alice = monitor_setup () in
  let monitor = Reference_monitor.create db in
  let conf = Security_class.bottom hierarchy universe in
  let i_high = cls hierarchy universe "system" [] in
  (* Object labelled, subject not: exempt. *)
  let subject = Subject.make alice conf in
  let labelled = Meta.make ~owner:alice ~acl:open_acl ~integrity:i_high conf in
  check "unlabelled subject exempt" true
    (Decision.is_granted (Reference_monitor.decide monitor ~subject ~meta:labelled ~mode:Access_mode.Write));
  (* Subject labelled, object not: exempt too. *)
  let labelled_subject = Subject.make ~integrity:i_high alice conf in
  let plain = Meta.make ~owner:alice ~acl:open_acl conf in
  check "unlabelled object exempt" true
    (Decision.is_granted
       (Reference_monitor.decide monitor ~subject:labelled_subject ~meta:plain ~mode:Access_mode.Read))

let test_policy_toggle () =
  let hierarchy, universe, db, alice = monitor_setup () in
  let monitor = Reference_monitor.create ~policy:Policy.no_integrity db in
  let conf = Security_class.bottom hierarchy universe in
  let subject = Subject.make ~integrity:(cls hierarchy universe "untrusted" []) alice conf in
  let meta = Meta.make ~owner:alice ~acl:open_acl ~integrity:(cls hierarchy universe "system" []) conf in
  check "integrity off admits write-up" true
    (Decision.is_granted (Reference_monitor.decide monitor ~subject ~meta ~mode:Access_mode.Write))

let suite =
  [
    Alcotest.test_case "no read-down" `Quick test_no_read_down;
    Alcotest.test_case "no write-up" `Quick test_no_write_up;
    Alcotest.test_case "denial reasons" `Quick test_check_reasons;
    Alcotest.test_case "duality with MAC" `Quick test_duality_with_mac;
    Alcotest.test_case "monitor applies Biba" `Quick test_monitor_applies_integrity;
    Alcotest.test_case "unlabelled exempt" `Quick test_unlabelled_exempt;
    Alcotest.test_case "policy toggle" `Quick test_policy_toggle;
  ]
