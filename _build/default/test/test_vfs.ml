open Exsec_core
open Exsec_extsys
open Exsec_services

let check = Alcotest.(check bool)

let boot () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let alice = Principal.individual "alice" in
  let eve = Principal.individual "eve" in
  List.iter (Principal.Db.add_individual db) [ admin; alice; eve ];
  let hierarchy = Level.hierarchy [ "local"; "outside" ] in
  let universe = Category.universe [] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let admin_sub = Kernel.admin_subject kernel in
  let vfs =
    match Vfs.install kernel ~subject:admin_sub with
    | Ok vfs -> vfs
    | Error e -> Alcotest.failf "install: %s" (Service.error_to_string e)
  in
  kernel, vfs, admin, alice, eve

let cls kernel level =
  Security_class.make
    (Level.of_name_exn (Kernel.hierarchy kernel) level)
    (Category.empty (Kernel.universe kernel))

let ok label = function
  | Ok value -> value
  | Error e -> Alcotest.failf "%s: %s" label (Service.error_to_string e)

(* A trivial in-handler backend storing data in an assoc ref. *)
let register_backend kernel ~owner ~klass ~fstype store =
  let read_impl _ctx args =
    match args with
    | [ Value.Str _; Value.Str subpath ] -> (
      match List.assoc_opt subpath !store with
      | Some data -> Ok (Value.str data)
      | None -> Error (Service.Ext_failure (subpath ^ ": no such file")))
    | _ -> Error (Service.Bad_argument "backend_read")
  in
  let write_impl _ctx args =
    match args with
    | [ Value.Str _; Value.Str subpath; Value.Str data ] ->
      store := (subpath, data) :: List.remove_assoc subpath !store;
      Ok Value.unit
    | _ -> Error (Service.Bad_argument "backend_write")
  in
  let stat_impl _ctx args =
    match args with
    | [ Value.Str _; Value.Str subpath ] -> (
      match List.assoc_opt subpath !store with
      | Some data -> Ok (Value.int (String.length data))
      | None -> Error (Service.Ext_failure "missing"))
    | _ -> Error (Service.Bad_argument "backend_stat")
  in
  let register event impl =
    Dispatcher.register (Kernel.dispatcher kernel) ~event
      { Dispatcher.owner; klass; guard = Some (Vfs.guard_fstype fstype); impl }
  in
  register Vfs.backend_read_event read_impl;
  register Vfs.backend_write_event write_impl;
  register Vfs.backend_stat_event stat_impl

let test_mount_routing () =
  let kernel, vfs, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let store = ref [] in
  register_backend kernel ~owner:"memback" ~klass:(cls kernel "outside") ~fstype:"mem" store;
  let () = ok "mount" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"mem" ~prefix:"/data/") in
  let alice_sub = Subject.make alice (cls kernel "local") in
  let () = ok "write" (Vfs.write vfs ~subject:alice_sub "/data/hello" "world") in
  Alcotest.(check string) "read back" "world" (ok "read" (Vfs.read vfs ~subject:alice_sub "/data/hello"));
  Alcotest.(check int) "stat" 5 (ok "stat" (Vfs.stat vfs ~subject:alice_sub "/data/hello"));
  match Vfs.read vfs ~subject:alice_sub "/elsewhere/x" with
  | Error (Service.Unresolved _) -> ()
  | _ -> Alcotest.fail "unmounted path routed"

let test_longest_prefix_wins () =
  let kernel, vfs, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let store_a = ref [ "f", "A"; "deep/f", "A2" ] in
  let store_b = ref [ "f", "B" ] in
  register_backend kernel ~owner:"a" ~klass:(cls kernel "outside") ~fstype:"fsa" store_a;
  register_backend kernel ~owner:"b" ~klass:(cls kernel "outside") ~fstype:"fsb" store_b;
  let () = ok "mount a" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"fsa" ~prefix:"/m/") in
  let () = ok "mount b" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"fsb" ~prefix:"/m/deep/") in
  let alice_sub = Subject.make alice (cls kernel "local") in
  Alcotest.(check string) "deep goes to b" "B" (ok "read b" (Vfs.read vfs ~subject:alice_sub "/m/deep/f"));
  (* /m/f -> fsa with subpath "f" *)
  Alcotest.(check string) "shallow goes to a" "A" (ok "read a" (Vfs.read vfs ~subject:alice_sub "/m/f"));
  let () = ok "unmount" (Vfs.unmount_fs vfs ~subject:admin_sub ~prefix:"/m/deep/") in
  Alcotest.(check string) "after unmount" "A2" (ok "read a2" (Vfs.read vfs ~subject:alice_sub "/m/deep/f"))

let test_mount_requires_right () =
  let kernel, vfs, _, alice, _ = boot () in
  let alice_sub = Subject.make alice (cls kernel "local") in
  match Vfs.mount_fs vfs ~subject:alice_sub ~fstype:"mem" ~prefix:"/x/" with
  | Error (Service.Denied { mode = Access_mode.Execute; _ }) -> ()
  | _ -> Alcotest.fail "non-admin mounted"

let test_backend_class_selection () =
  let kernel, vfs, _, alice, eve = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  (* Two backends for the same fstype at different classes. *)
  let store_fast = ref [ "f", "fast" ] in
  let store_slow = ref [ "f", "slow" ] in
  register_backend kernel ~owner:"fast" ~klass:(cls kernel "local") ~fstype:"dual" store_fast;
  register_backend kernel ~owner:"slow" ~klass:(cls kernel "outside") ~fstype:"dual" store_slow;
  let () = ok "mount" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"dual" ~prefix:"/d/") in
  let local_sub = Subject.make alice (cls kernel "local") in
  let out_sub = Subject.make eve (cls kernel "outside") in
  Alcotest.(check string) "local caller gets local backend" "fast"
    (ok "local" (Vfs.read vfs ~subject:local_sub "/d/f"));
  Alcotest.(check string) "outside caller gets outside backend" "slow"
    (ok "outside" (Vfs.read vfs ~subject:out_sub "/d/f"))

let test_grant_extend () =
  let kernel, vfs, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let alice_sub = Subject.make alice (cls kernel "local") in
  (* Without the grant, alice cannot register a backend via an
     extension. *)
  let ext store =
    Extension.make ~name:"alicefs" ~author:alice
      ~extends:
        [
          Extension.extends ~guard:(Vfs.guard_fstype "afs") Vfs.backend_read_event
            (fun _ctx args ->
              match args with
              | [ Value.Str _; Value.Str subpath ] ->
                Ok (Value.str (subpath ^ "@" ^ string_of_int !store))
              | _ -> Error (Service.Bad_argument "x"));
        ]
      ()
  in
  (match Linker.link kernel ~subject:alice_sub (ext (ref 1)) with
  | Error (Linker.Extend_denied _) -> ()
  | _ -> Alcotest.fail "extend without grant");
  let () = ok "grant" (Vfs.grant_extend vfs ~subject:admin_sub (Acl.Individual alice)) in
  match Linker.link kernel ~subject:alice_sub (ext (ref 2)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "link after grant: %s" (Format.asprintf "%a" Linker.pp_link_error e)

let suite =
  [
    Alcotest.test_case "mount and route" `Quick test_mount_routing;
    Alcotest.test_case "longest prefix" `Quick test_longest_prefix_wins;
    Alcotest.test_case "mount requires right" `Quick test_mount_requires_right;
    Alcotest.test_case "backend class selection" `Quick test_backend_class_selection;
    Alcotest.test_case "grant extend" `Quick test_grant_extend;
  ]

let test_unmount_then_access () =
  let kernel, vfs, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let store = ref [ "f", "x" ] in
  register_backend kernel ~owner:"b" ~klass:(cls kernel "outside") ~fstype:"tmp" store;
  let () = ok "mount" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"tmp" ~prefix:"/t/") in
  let alice_sub = Subject.make alice (cls kernel "local") in
  let _ = ok "read" (Vfs.read vfs ~subject:alice_sub "/t/f") in
  let () = ok "unmount" (Vfs.unmount_fs vfs ~subject:admin_sub ~prefix:"/t/") in
  (match Vfs.read vfs ~subject:alice_sub "/t/f" with
  | Error (Service.Unresolved _) -> ()
  | _ -> Alcotest.fail "read after unmount");
  Alcotest.(check int) "table empty" 0 (List.length (Vfs.mounts vfs))

let test_remount_replaces () =
  let kernel, vfs, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let store_a = ref [ "f", "A" ] in
  let store_b = ref [ "f", "B" ] in
  register_backend kernel ~owner:"a" ~klass:(cls kernel "outside") ~fstype:"fa" store_a;
  register_backend kernel ~owner:"b" ~klass:(cls kernel "outside") ~fstype:"fb" store_b;
  let () = ok "mount a" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"fa" ~prefix:"/m/") in
  let () = ok "remount b" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"fb" ~prefix:"/m/") in
  let alice_sub = Subject.make alice (cls kernel "local") in
  Alcotest.(check string) "b serves" "B" (ok "read" (Vfs.read vfs ~subject:alice_sub "/m/f"));
  Alcotest.(check int) "one entry" 1 (List.length (Vfs.mounts vfs))

let test_backend_missing_handler () =
  let kernel, vfs, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  (* Mounted fstype with no registered backend: the event dispatch
     finds no handler. *)
  let () = ok "mount" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"ghostfs" ~prefix:"/g/") in
  ignore kernel;
  let alice_sub = Subject.make alice (cls kernel "local") in
  match Vfs.read vfs ~subject:alice_sub "/g/x" with
  | Error (Service.No_handler _) -> ()
  | _ -> Alcotest.fail "expected No_handler"

let suite =
  suite
  @ [
      Alcotest.test_case "unmount then access" `Quick test_unmount_then_access;
      Alcotest.test_case "remount replaces" `Quick test_remount_replaces;
      Alcotest.test_case "missing backend" `Quick test_backend_missing_handler;
    ]
