(* Subject, Meta, Audit and the reference monitor. *)

open Exsec_core

let check = Alcotest.(check bool)

let std () =
  let hierarchy = Level.hierarchy [ "high"; "low" ] in
  let universe = Category.universe [ "a"; "b" ] in
  hierarchy, universe

let cls hierarchy universe level cats =
  Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)

let setup () =
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let alice = Principal.individual "alice" in
  let bob = Principal.individual "bob" in
  Principal.Db.add_individual db alice;
  Principal.Db.add_individual db bob;
  hierarchy, universe, db, alice, bob

(* {1 Subject} *)

let test_subject_effective_class () =
  let hierarchy, universe, _, alice, _ = setup () in
  let high = cls hierarchy universe "high" [ "a"; "b" ] in
  let low = cls hierarchy universe "low" [ "a" ] in
  let subject = Subject.make alice high in
  check "no ceiling" true (Security_class.equal (Subject.effective_class subject) high);
  let capped = Subject.with_ceiling subject low in
  check "capped" true (Security_class.equal (Subject.effective_class capped) low);
  (* Ceilings nest via meet: a second, incomparable ceiling can only
     narrow. *)
  let low_b = cls hierarchy universe "low" [ "b" ] in
  let doubly = Subject.with_ceiling capped low_b in
  Alcotest.(check int)
    "nested ceilings meet" 0
    (Category.cardinal (Security_class.categories (Subject.effective_class doubly)));
  let restored = Subject.without_ceiling doubly in
  check "without ceiling" true (Security_class.equal (Subject.effective_class restored) high)

let test_subject_ceiling_cannot_raise () =
  let hierarchy, universe, _, alice, _ = setup () in
  let low = cls hierarchy universe "low" [] in
  let high = cls hierarchy universe "high" [ "a"; "b" ] in
  let subject = Subject.make alice low in
  (* A ceiling above the clearance has no effect. *)
  let capped = Subject.with_ceiling subject high in
  check "ceiling can't raise" true
    (Security_class.equal (Subject.effective_class capped) low)

(* {1 Audit} *)

let test_audit_totals_and_ring () =
  let hierarchy, universe, _, alice, _ = setup () in
  let subject = Subject.make alice (cls hierarchy universe "high" []) in
  let log = Audit.create ~capacity:4 () in
  for i = 1 to 10 do
    Audit.record log ~subject ~object_name:(Printf.sprintf "o%d" i) ~object_id:i
      ~object_class:(cls hierarchy universe "high" []) ~mode:Access_mode.Read
      (if i mod 2 = 0 then Decision.Granted else Decision.Denied Decision.Dac_no_entry)
  done;
  Alcotest.(check int) "granted" 5 (Audit.granted_total log);
  Alcotest.(check int) "denied" 5 (Audit.denied_total log);
  Alcotest.(check int) "total" 10 (Audit.total log);
  let events = Audit.events log in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length events);
  (match events with
  | first :: _ -> Alcotest.(check string) "oldest retained" "o7" first.Audit.object_name
  | [] -> Alcotest.fail "no events");
  Audit.clear log;
  Alcotest.(check int) "cleared" 0 (Audit.total log)

let test_audit_capacity_validation () =
  match Audit.create ~capacity:0 () with
  | _ -> Alcotest.fail "zero capacity accepted"
  | exception Invalid_argument _ -> ()

(* {1 Reference monitor} *)

let test_both_layers_must_grant () =
  let hierarchy, universe, db, alice, bob = setup () in
  let monitor = Reference_monitor.create db in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  let meta_high_acl_open = Meta.make ~owner:bob ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Read ] ]) high in
  let low_subject = Subject.make alice low in
  let high_subject = Subject.make alice high in
  (* DAC grants, MAC refuses. *)
  (match Reference_monitor.decide monitor ~subject:low_subject ~meta:meta_high_acl_open ~mode:Access_mode.Read with
  | Decision.Denied (Decision.Mac_denied Mac.Read_up) -> ()
  | other ->
    Alcotest.failf "expected MAC read-up, got %s" (Format.asprintf "%a" Decision.pp other));
  (* MAC grants, DAC refuses. *)
  let meta_closed = Meta.make ~owner:bob high in
  (match Reference_monitor.decide monitor ~subject:high_subject ~meta:meta_closed ~mode:Access_mode.Read with
  | Decision.Denied Decision.Dac_no_entry -> ()
  | _ -> Alcotest.fail "expected DAC denial");
  (* Both grant. *)
  match Reference_monitor.decide monitor ~subject:high_subject ~meta:meta_high_acl_open ~mode:Access_mode.Read with
  | Decision.Granted -> ()
  | _ -> Alcotest.fail "expected grant"

let test_policy_ablation () =
  let hierarchy, universe, db, alice, bob = setup () in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  let meta = Meta.make ~owner:bob ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Read ] ]) high in
  let low_subject = Subject.make alice low in
  let try_policy policy =
    let monitor = Reference_monitor.create ~policy db in
    Decision.is_granted
      (Reference_monitor.decide monitor ~subject:low_subject ~meta ~mode:Access_mode.Read)
  in
  check "default denies read-up" false (try_policy Policy.default);
  check "dac-only grants" true (try_policy Policy.dac_only);
  check "mac-only denies" false (try_policy Policy.mac_only);
  check "unchecked grants" true (try_policy Policy.unchecked)

let test_check_audits () =
  let hierarchy, universe, db, alice, _ = setup () in
  let monitor = Reference_monitor.create db in
  let subject = Subject.make alice (cls hierarchy universe "high" []) in
  let meta = Meta.make ~owner:alice (cls hierarchy universe "high" []) in
  ignore (Reference_monitor.check monitor ~subject ~meta ~object_name:"/x" ~mode:Access_mode.Read);
  ignore (Reference_monitor.check monitor ~subject ~meta ~object_name:"/x" ~mode:Access_mode.Read);
  Alcotest.(check int) "two audit events" 2 (Audit.total (Reference_monitor.audit monitor));
  (* decide does not audit *)
  ignore (Reference_monitor.decide monitor ~subject ~meta ~mode:Access_mode.Read);
  Alcotest.(check int) "still two" 2 (Audit.total (Reference_monitor.audit monitor))

let test_check_exn () =
  let hierarchy, universe, db, alice, bob = setup () in
  let monitor = Reference_monitor.create db in
  let subject = Subject.make alice (cls hierarchy universe "low" []) in
  let meta = Meta.make ~owner:bob (cls hierarchy universe "high" []) in
  match
    Reference_monitor.check_exn monitor ~subject ~meta ~object_name:"/x"
      ~mode:Access_mode.Read
  with
  | () -> Alcotest.fail "expected Access_denied"
  | exception Reference_monitor.Access_denied { object_name = "/x"; _ } -> ()

let test_set_acl_requires_administrate () =
  let hierarchy, universe, db, alice, bob = setup () in
  let monitor = Reference_monitor.create db in
  let high = cls hierarchy universe "high" [] in
  let meta = Meta.make ~owner:bob high in
  let alice_subject = Subject.make alice high in
  let bob_subject = Subject.make bob high in
  let new_acl = Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Read ] ] in
  (* Alice holds no administrate right. *)
  (match Reference_monitor.set_acl monitor ~subject:alice_subject ~meta ~object_name:"/x" new_acl with
  | Decision.Denied _ -> ()
  | Decision.Granted -> Alcotest.fail "non-admin replaced the ACL");
  check "acl unchanged" true (Acl.equal meta.Meta.acl (Acl.owner_default bob));
  (* The owner does. *)
  (match Reference_monitor.set_acl monitor ~subject:bob_subject ~meta ~object_name:"/x" new_acl with
  | Decision.Granted -> ()
  | Decision.Denied _ -> Alcotest.fail "owner refused");
  check "acl replaced" true (Acl.equal meta.Meta.acl new_acl)

let test_owner_lockout_is_possible () =
  (* Replacing the ACL can remove the owner's own administrate right:
     discretionary control follows the ACL, not ownership. *)
  let hierarchy, universe, db, _, bob = setup () in
  let monitor = Reference_monitor.create db in
  let high = cls hierarchy universe "high" [] in
  let meta = Meta.make ~owner:bob high in
  let bob_subject = Subject.make bob high in
  let lockout = Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Read ] ] in
  (match Reference_monitor.set_acl monitor ~subject:bob_subject ~meta ~object_name:"/x" lockout with
  | Decision.Granted -> ()
  | Decision.Denied _ -> Alcotest.fail "first replace refused");
  match Reference_monitor.set_acl monitor ~subject:bob_subject ~meta ~object_name:"/x" (Acl.owner_default bob) with
  | Decision.Denied _ -> ()
  | Decision.Granted -> Alcotest.fail "locked-out owner still administrates"

let test_trusted_subject_writes_down () =
  let hierarchy, universe, db, alice, bob = setup () in
  let monitor = Reference_monitor.create db in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  let meta = Meta.make ~owner:bob ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Write ] ]) low in
  let normal = Subject.make alice high in
  let trusted = Subject.make ~trusted:true alice high in
  check "normal write-down denied" false
    (Decision.is_granted (Reference_monitor.decide monitor ~subject:normal ~meta ~mode:Access_mode.Write));
  check "trusted write-down allowed" true
    (Decision.is_granted (Reference_monitor.decide monitor ~subject:trusted ~meta ~mode:Access_mode.Write));
  (* Trust does not bypass DAC. *)
  let meta_closed = Meta.make ~owner:bob low in
  check "trusted still bound by DAC" false
    (Decision.is_granted
       (Reference_monitor.decide monitor ~subject:trusted ~meta:meta_closed ~mode:Access_mode.Write))

let test_check_attach () =
  let hierarchy, universe, db, alice, bob = setup () in
  let monitor = Reference_monitor.create db in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  let parent_open =
    Meta.make ~owner:bob ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Write ] ]) low
  in
  let high_subject = Subject.make alice high in
  let low_subject = Subject.make alice low in
  let child_high = Meta.make ~owner:alice high in
  let child_low = Meta.make ~owner:alice low in
  (* Create at or above your own class: fine. *)
  check "low creates low child" true
    (Decision.is_granted
       (Reference_monitor.check_attach monitor ~subject:low_subject ~parent:parent_open
          ~child:child_low ~object_name:"/p/c"));
  check "low creates high child" true
    (Decision.is_granted
       (Reference_monitor.check_attach monitor ~subject:low_subject ~parent:parent_open
          ~child:child_high ~object_name:"/p/c"));
  (* Creating below your class would be a write-down. *)
  check "high creates low child denied" false
    (Decision.is_granted
       (Reference_monitor.check_attach monitor ~subject:high_subject ~parent:parent_open
          ~child:child_low ~object_name:"/p/c"));
  (* And DAC write on the parent is required. *)
  let parent_closed = Meta.make ~owner:bob low in
  check "closed parent refuses" false
    (Decision.is_granted
       (Reference_monitor.check_attach monitor ~subject:low_subject ~parent:parent_closed
          ~child:child_low ~object_name:"/p/c"))

let suite =
  [
    Alcotest.test_case "subject effective class" `Quick test_subject_effective_class;
    Alcotest.test_case "ceiling cannot raise" `Quick test_subject_ceiling_cannot_raise;
    Alcotest.test_case "audit totals and ring" `Quick test_audit_totals_and_ring;
    Alcotest.test_case "audit capacity" `Quick test_audit_capacity_validation;
    Alcotest.test_case "both layers must grant" `Quick test_both_layers_must_grant;
    Alcotest.test_case "policy ablation" `Quick test_policy_ablation;
    Alcotest.test_case "check audits" `Quick test_check_audits;
    Alcotest.test_case "check_exn" `Quick test_check_exn;
    Alcotest.test_case "set_acl needs administrate" `Quick test_set_acl_requires_administrate;
    Alcotest.test_case "owner lockout possible" `Quick test_owner_lockout_is_possible;
    Alcotest.test_case "trusted subject" `Quick test_trusted_subject_writes_down;
    Alcotest.test_case "attach rule" `Quick test_check_attach;
  ]

let test_audit_exact_capacity () =
  let hierarchy, universe, _, alice, _ = setup () in
  let subject = Subject.make alice (cls hierarchy universe "high" []) in
  let klass = cls hierarchy universe "high" [] in
  let log = Audit.create ~capacity:3 () in
  for i = 1 to 3 do
    Audit.record log ~subject ~object_name:(Printf.sprintf "o%d" i) ~object_id:i
      ~object_class:klass ~mode:Access_mode.Read Decision.Granted
  done;
  (* Exactly at capacity: all three retained, in order. *)
  Alcotest.(check (list string)) "all retained" [ "o1"; "o2"; "o3" ]
    (List.map (fun e -> e.Audit.object_name) (Audit.events log));
  Audit.record log ~subject ~object_name:"o4" ~object_id:4 ~object_class:klass
    ~mode:Access_mode.Read Decision.Granted;
  Alcotest.(check (list string)) "oldest dropped" [ "o2"; "o3"; "o4" ]
    (List.map (fun e -> e.Audit.object_name) (Audit.events log))

let test_decision_equal () =
  let open Decision in
  check "granted" true (equal Granted Granted);
  check "same denial" true (equal (Denied Dac_no_entry) (Denied Dac_no_entry));
  check "different denial" false
    (equal (Denied Dac_no_entry) (Denied (Mac_denied Mac.Read_up)));
  check "mac variants" false
    (equal (Denied (Mac_denied Mac.Read_up)) (Denied (Mac_denied Mac.Write_down)));
  check "who compared" true
    (equal
       (Denied (Dac_explicit_deny (Acl.Individual (Principal.individual "x"))))
       (Denied (Dac_explicit_deny (Acl.Individual (Principal.individual "x")))));
  check "who differs" false
    (equal
       (Denied (Dac_explicit_deny (Acl.Individual (Principal.individual "x"))))
       (Denied (Dac_explicit_deny Acl.Everyone)));
  check "result roundtrip" true
    (equal (of_result (to_result (Denied Not_an_object))) (Denied Not_an_object))

let test_policy_pp () =
  let text = Format.asprintf "%a" Policy.pp Policy.default in
  check "mentions dac" true (String.length text > 0);
  Alcotest.(check string) "default flags"
    "{dac=true; mac=true; integrity=true; overwrite=strict; recheck_calls=false}" text

let suite =
  suite
  @ [
      Alcotest.test_case "audit exact capacity" `Quick test_audit_exact_capacity;
      Alcotest.test_case "decision equal" `Quick test_decision_equal;
      Alcotest.test_case "policy pp" `Quick test_policy_pp;
    ]
