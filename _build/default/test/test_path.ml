open Exsec_core

let check = Alcotest.(check bool)

let test_parse_and_print () =
  Alcotest.(check string) "simple" "/a/b/c" (Path.to_string (Path.of_string "/a/b/c"));
  Alcotest.(check string) "no leading slash" "/a/b" (Path.to_string (Path.of_string "a/b"));
  Alcotest.(check string) "repeated slashes" "/a/b" (Path.to_string (Path.of_string "//a///b/"));
  Alcotest.(check string) "root" "/" (Path.to_string (Path.of_string "/"));
  Alcotest.(check string) "empty is root" "/" (Path.to_string (Path.of_string ""))

let test_segments_validation () =
  (match Path.of_segments [ "a"; "" ] with
  | _ -> Alcotest.fail "empty segment accepted"
  | exception Invalid_argument _ -> ());
  match Path.of_segments [ "a/b" ] with
  | _ -> Alcotest.fail "slash in segment accepted"
  | exception Invalid_argument _ -> ()

let test_parent_basename () =
  let p = Path.of_string "/a/b/c" in
  Alcotest.(check (option string)) "basename" (Some "c") (Path.basename p);
  (match Path.parent p with
  | Some parent -> Alcotest.(check string) "parent" "/a/b" (Path.to_string parent)
  | None -> Alcotest.fail "no parent");
  check "root basename" true (Path.basename Path.root = None);
  check "root parent" true (Path.parent Path.root = None)

let test_child_append () =
  let p = Path.child (Path.of_string "/a") "b" in
  Alcotest.(check string) "child" "/a/b" (Path.to_string p);
  let q = Path.append p (Path.of_string "/c/d") in
  Alcotest.(check string) "append" "/a/b/c/d" (Path.to_string q);
  Alcotest.(check int) "depth" 4 (Path.depth q)

let test_prefix () =
  let a = Path.of_string "/a" in
  let ab = Path.of_string "/a/b" in
  let ax = Path.of_string "/a/x" in
  check "prefix" true (Path.is_prefix a ab);
  check "self prefix" true (Path.is_prefix ab ab);
  check "root prefix" true (Path.is_prefix Path.root ab);
  check "not prefix" false (Path.is_prefix ab a);
  check "sibling" false (Path.is_prefix ax ab)

let test_prefixes () =
  let p = Path.of_string "/a/b" in
  Alcotest.(check (list string))
    "prefixes" [ "/"; "/a"; "/a/b" ]
    (List.map Path.to_string (Path.prefixes p));
  Alcotest.(check (list string)) "root prefixes" [ "/" ] (List.map Path.to_string (Path.prefixes Path.root))

let test_compare_equal () =
  check "equal" true (Path.equal (Path.of_string "/a/b") (Path.of_string "a/b"));
  check "ordered" true (Path.compare (Path.of_string "/a") (Path.of_string "/b") < 0)

let prop_roundtrip =
  let seg = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) in
  let arb = QCheck.make QCheck.Gen.(list_size (int_range 0 6) seg) in
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:300 arb (fun segments ->
      let p = Path.of_segments segments in
      Path.equal p (Path.of_string (Path.to_string p)))

let prop_parent_child_inverse =
  let seg = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) in
  let arb = QCheck.make QCheck.Gen.(pair (list_size (int_range 0 5) seg) seg) in
  QCheck.Test.make ~name:"parent of child is original" ~count:300 arb
    (fun (segments, last) ->
      let p = Path.of_segments segments in
      match Path.parent (Path.child p last) with
      | Some back -> Path.equal back p
      | None -> false)

let suite =
  [
    Alcotest.test_case "parse and print" `Quick test_parse_and_print;
    Alcotest.test_case "segment validation" `Quick test_segments_validation;
    Alcotest.test_case "parent/basename" `Quick test_parent_basename;
    Alcotest.test_case "child/append" `Quick test_child_append;
    Alcotest.test_case "prefix" `Quick test_prefix;
    Alcotest.test_case "prefixes" `Quick test_prefixes;
    Alcotest.test_case "compare/equal" `Quick test_compare_equal;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_parent_child_inverse;
  ]
