open Exsec_core

let check = Alcotest.(check bool)

let test_string_roundtrip () =
  List.iter
    (fun mode ->
      match Access_mode.of_string (Access_mode.to_string mode) with
      | Some back -> check "roundtrip" true (Access_mode.equal mode back)
      | None -> Alcotest.failf "no roundtrip for %s" (Access_mode.to_string mode))
    Access_mode.all

let test_of_string_unknown () =
  check "unknown" true (Access_mode.of_string "frobnicate" = None);
  check "case-sensitive" true (Access_mode.of_string "Read" = None)

let test_read_write_partition () =
  (* Every mode is read-like or write-like, never both. *)
  List.iter
    (fun mode ->
      check
        (Access_mode.to_string mode)
        true
        (Access_mode.is_read_like mode <> Access_mode.is_write_like mode))
    Access_mode.all

let test_extend_is_read_like () =
  check "extend" true (Access_mode.is_read_like Access_mode.Extend);
  check "execute" true (Access_mode.is_read_like Access_mode.Execute);
  check "administrate" true (Access_mode.is_write_like Access_mode.Administrate)

let test_set_basics () =
  let open Access_mode in
  let s = Set.of_list [ Read; Write; Read ] in
  Alcotest.(check int) "cardinal dedups" 2 (Set.cardinal s);
  check "mem read" true (Set.mem Read s);
  check "mem extend" false (Set.mem Extend s);
  check "subset" true (Set.subset s Set.full);
  check "full has all" true (List.for_all (fun m -> Set.mem m Set.full) all);
  Alcotest.(check int) "full cardinal" 8 (Set.cardinal Set.full);
  check "empty" true (Set.is_empty Set.empty)

let test_set_algebra () =
  let open Access_mode in
  let a = Set.of_list [ Read; Write ] in
  let b = Set.of_list [ Write; Extend ] in
  Alcotest.(check int) "union" 3 (Set.cardinal (Set.union a b));
  Alcotest.(check int) "inter" 1 (Set.cardinal (Set.inter a b));
  Alcotest.(check int) "diff" 1 (Set.cardinal (Set.diff a b));
  check "diff member" true (Set.mem Read (Set.diff a b));
  check "remove" false (Set.mem Read (Set.remove Read a));
  check "add" true (Set.mem Extend (Set.add Extend a))

let test_set_roundtrip () =
  let open Access_mode in
  List.iter
    (fun mode ->
      let s = Set.singleton mode in
      Alcotest.(check (list string))
        "to_list" [ to_string mode ]
        (List.map to_string (Set.to_list s)))
    all

let suite =
  [
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "of_string unknown" `Quick test_of_string_unknown;
    Alcotest.test_case "read/write partition" `Quick test_read_write_partition;
    Alcotest.test_case "extend is read-like" `Quick test_extend_is_read_like;
    Alcotest.test_case "set basics" `Quick test_set_basics;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "set roundtrip" `Quick test_set_roundtrip;
  ]
