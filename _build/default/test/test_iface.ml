open Exsec_core
open Exsec_extsys

let check = Alcotest.(check bool)

let test_make_and_find () =
  let iface = Iface.make "math" [ Iface.proc_sig "add" 2; Iface.proc_sig "neg" 1 ] in
  (match Iface.find_proc iface "add" with
  | Some p -> Alcotest.(check int) "arity" 2 p.Iface.arity
  | None -> Alcotest.fail "add not found");
  check "missing" true (Iface.find_proc iface "mul" = None)

let test_duplicates_rejected () =
  match Iface.make "dup" [ Iface.proc_sig "p" 0; Iface.proc_sig "p" 1 ] with
  | _ -> Alcotest.fail "duplicate procs accepted"
  | exception Invalid_argument _ -> ()

let test_paths () =
  let iface = Iface.make "fs" [ Iface.proc_sig "read" 1; Iface.proc_sig "write" 2 ] in
  Alcotest.(check (list string))
    "mounted paths"
    [ "/svc/fs/read"; "/svc/fs/write" ]
    (List.map Path.to_string (Iface.paths ~mount:(Path.of_string "/svc/fs") iface))

let test_variadic_arity () =
  let iface = Iface.make "v" [ Iface.proc_sig "any" (-1) ] in
  match Iface.find_proc iface "any" with
  | Some p ->
    (* A variadic procedure accepts every argument count. *)
    let proc = Service.proc p.Iface.name p.Iface.arity (Service.const Value.unit) in
    check "zero args" true (Service.check_arity proc [] = Ok ());
    check "three args" true
      (Service.check_arity proc [ Value.unit; Value.unit; Value.unit ] = Ok ())
  | None -> Alcotest.fail "missing"

let test_service_arity_error_details () =
  let proc = Service.proc "two" 2 (Service.const Value.unit) in
  match Service.check_arity proc [ Value.unit ] with
  | Error (Service.Bad_arity { proc = "two"; expected = 2; got = 1 }) -> ()
  | _ -> Alcotest.fail "wrong arity report"

let test_pp () =
  let iface = Iface.make "m" [ Iface.proc_sig "f" 1 ] in
  Alcotest.(check string) "pp" "m{f/1}" (Format.asprintf "%a" Iface.pp iface)

let suite =
  [
    Alcotest.test_case "make and find" `Quick test_make_and_find;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicates_rejected;
    Alcotest.test_case "paths" `Quick test_paths;
    Alcotest.test_case "variadic arity" `Quick test_variadic_arity;
    Alcotest.test_case "arity error details" `Quick test_service_arity_error_details;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
