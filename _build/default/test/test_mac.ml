open Exsec_core

let check = Alcotest.(check bool)

let std () =
  let hierarchy = Level.hierarchy [ "high"; "mid"; "low" ] in
  let universe = Category.universe [ "a"; "b" ] in
  hierarchy, universe

let cls hierarchy universe level cats =
  Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)

let test_simple_security () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "high" [ "a" ] in
  let low = cls hierarchy universe "low" [] in
  check "read down ok" true (Mac.read_ok ~subject:high ~object_:low);
  check "read up denied" false (Mac.read_ok ~subject:low ~object_:high);
  check "read same ok" true (Mac.read_ok ~subject:high ~object_:high)

let test_star_property () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "high" [ "a" ] in
  let low = cls hierarchy universe "low" [] in
  check "write up ok" true (Mac.write_ok ~subject:low ~object_:high);
  check "write down denied" false (Mac.write_ok ~subject:high ~object_:low)

let test_categories_gate_reads () =
  let hierarchy, universe = std () in
  let sub = cls hierarchy universe "high" [ "a" ] in
  let obj = cls hierarchy universe "low" [ "b" ] in
  (* Higher level but missing category b. *)
  check "category blocks read" false (Mac.read_ok ~subject:sub ~object_:obj)

let test_liberal_vs_strict_overwrite () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  let open Access_mode in
  check "liberal write up" true (Mac.permits ~rule:Mac.Liberal ~subject:low ~object_:high Write);
  check "strict write up blocked" false
    (Mac.permits ~rule:Mac.Strict ~subject:low ~object_:high Write);
  check "strict append up ok" true
    (Mac.permits ~rule:Mac.Strict ~subject:low ~object_:high Write_append);
  check "strict write same ok" true
    (Mac.permits ~rule:Mac.Strict ~subject:high ~object_:high Write);
  check "strict delete up blocked" false
    (Mac.permits ~rule:Mac.Strict ~subject:low ~object_:high Delete)

let test_denial_reasons () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  (match Mac.check ~rule:Mac.Strict ~subject:low ~object_:high Access_mode.Read with
  | Error Mac.Read_up -> ()
  | _ -> Alcotest.fail "expected Read_up");
  (match Mac.check ~rule:Mac.Strict ~subject:high ~object_:low Access_mode.Write with
  | Error Mac.Write_down -> ()
  | _ -> Alcotest.fail "expected Write_down");
  match Mac.check ~rule:Mac.Strict ~subject:low ~object_:high Access_mode.Write with
  | Error Mac.Blind_overwrite -> ()
  | _ -> Alcotest.fail "expected Blind_overwrite"

let test_extend_is_read_ruled () =
  let hierarchy, universe = std () in
  let high = cls hierarchy universe "high" [] in
  let low = cls hierarchy universe "low" [] in
  (* Extending follows the read rule: the extension must be able to
     see the service it specializes; a low extension cannot even name
     a high service.  The flow back to callers is governed by the
     dispatcher's class-indexed handler selection, not here. *)
  check "extend down ok" true
    (Mac.permits ~rule:Mac.Strict ~subject:high ~object_:low Access_mode.Extend);
  check "extend up denied" false
    (Mac.permits ~rule:Mac.Strict ~subject:low ~object_:high Access_mode.Extend)

(* Information-flow property: a read and a write by the same subject
   can only move information from a dominated class to a dominating
   one (Denning's soundness condition). *)
let prop_no_downward_flow =
  let hierarchy, universe = std () in
  let arb =
    QCheck.make
      QCheck.Gen.(
        let cls_gen =
          let* level = oneofl (Level.names hierarchy) in
          let* a = bool in
          let* b = bool in
          let cats = List.concat [ (if a then [ "a" ] else []); (if b then [ "b" ] else []) ] in
          return (cls hierarchy universe level cats)
        in
        triple cls_gen cls_gen cls_gen)
  in
  QCheck.Test.make ~name:"no downward flow via read+write" ~count:500 arb
    (fun (subject, source, sink) ->
      let can_read = Mac.read_ok ~subject ~object_:source in
      let can_write = Mac.write_ok ~subject ~object_:sink in
      if can_read && can_write then Security_class.dominates sink source else true)

let prop_strict_subsumed_by_liberal =
  let hierarchy, universe = std () in
  let arb =
    QCheck.make
      QCheck.Gen.(
        let cls_gen =
          let* level = oneofl (Level.names hierarchy) in
          let* a = bool in
          let cats = if a then [ "a" ] else [] in
          return (cls hierarchy universe level cats)
        in
        triple cls_gen cls_gen (oneofl Access_mode.all))
  in
  QCheck.Test.make ~name:"strict permits implies liberal permits" ~count:500 arb
    (fun (subject, object_, mode) ->
      if Mac.permits ~rule:Mac.Strict ~subject ~object_ mode then
        Mac.permits ~rule:Mac.Liberal ~subject ~object_ mode
      else true)

let suite =
  [
    Alcotest.test_case "simple security" `Quick test_simple_security;
    Alcotest.test_case "star property" `Quick test_star_property;
    Alcotest.test_case "categories gate reads" `Quick test_categories_gate_reads;
    Alcotest.test_case "liberal vs strict" `Quick test_liberal_vs_strict_overwrite;
    Alcotest.test_case "denial reasons" `Quick test_denial_reasons;
    Alcotest.test_case "extend under read rule" `Quick test_extend_is_read_ruled;
    QCheck_alcotest.to_alcotest prop_no_downward_flow;
    QCheck_alcotest.to_alcotest prop_strict_subsumed_by_liberal;
  ]
