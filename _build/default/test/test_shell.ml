open Exsec_shell

let check = Alcotest.(check bool)

let boot () =
  match Shell.create () with
  | Ok shell -> shell
  | Error message -> Alcotest.failf "create: %s" message

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  n = 0 || scan 0

let test_boot_and_whoami () =
  let shell = boot () in
  check "admin session" true (contains (Shell.exec shell "whoami") "admin");
  check "prompt" true (contains (Shell.prompt shell) "admin")

let test_login_sessions () =
  let shell = boot () in
  check "alice" true (contains (Shell.exec shell "login alice") "alice@local");
  check "below clearance" true
    (contains (Shell.exec shell "login alice organization department-1") "organization");
  check "above clearance refused" true
    (contains (Shell.exec shell "login bob local") "error");
  check "unknown user" true (contains (Shell.exec shell "login ghost") "error")

let test_file_commands () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  Alcotest.(check string) "write" "ok" (Shell.exec shell "write /fs/note hello world");
  Alcotest.(check string) "cat" "hello world" (Shell.exec shell "cat /fs/note");
  Alcotest.(check string) "append" "ok" (Shell.exec shell "append /fs/note !");
  Alcotest.(check string) "cat2" "hello world!" (Shell.exec shell "cat /fs/note");
  check "ls shows it" true (contains (Shell.exec shell "ls /fs") "note");
  Alcotest.(check string) "rm" "ok" (Shell.exec shell "rm /fs/note");
  check "gone" true (contains (Shell.exec shell "cat /fs/note") "error");
  check "non-fs path refused" true (contains (Shell.exec shell "cat /svc/log") "error")

let test_protection_commands () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  ignore (Shell.exec shell "write /fs/mine secret");
  (* bob at organization cannot read alice's local file: DAC (owner
     only) and MAC (read-up) both block. *)
  ignore (Shell.exec shell "login bob");
  check "bob denied" true (contains (Shell.exec shell "cat /fs/mine") "error");
  (* alice grants read; MAC still refuses bob (alice's file is
     local-classified). *)
  ignore (Shell.exec shell "login alice");
  Alcotest.(check string) "allow" "ok" (Shell.exec shell "allow /fs/mine user:bob read");
  ignore (Shell.exec shell "login bob");
  check "MAC still blocks" true (contains (Shell.exec shell "cat /fs/mine") "read-up");
  (* Relabelling takes the administrate right, which only the owner
     holds — even the trusted admin is refused by DAC. *)
  ignore (Shell.exec shell "login admin");
  check "admin lacks administrate" true
    (contains (Shell.exec shell "setclass /fs/mine organization department-2") "error");
  ignore (Shell.exec shell "login alice");
  Alcotest.(check string) "owner relabels" "ok"
    (Shell.exec shell "setclass /fs/mine organization department-2");
  ignore (Shell.exec shell "login bob");
  Alcotest.(check string) "bob reads" "secret" (Shell.exec shell "cat /fs/mine")

let test_extensions_and_calls () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  check "load cipher" true (contains (Shell.exec shell "load cipher") "linked");
  Alcotest.(check string) "rot13" {|"uryyb"|} (Shell.exec shell "call /ext/cipher/rot13 hello");
  check "extensions list" true (contains (Shell.exec shell "extensions") "cipher");
  Alcotest.(check string) "unload" "unloaded" (Shell.exec shell "unload cipher");
  check "gone" true (contains (Shell.exec shell "call /ext/cipher/rot13 x") "error")

let test_threads_commands () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  check "spawn" true (contains (Shell.exec shell "spawn worker 3") "spawned");
  check "threads listed" true (contains (Shell.exec shell "threads") "worker");
  check "run drains" true (contains (Shell.exec shell "run") "quanta");
  Alcotest.(check string) "no live" "no live threads" (Shell.exec shell "threads")

let test_network_commands () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  Alcotest.(check string) "listen" "listening" (Shell.exec shell "listen mail 25");
  Alcotest.(check string) "connect" "connected" (Shell.exec shell "connect mail 25");
  Alcotest.(check string) "send" "sent" (Shell.exec shell "send mail 25 HELO there");
  Alcotest.(check string) "recv" "HELO there" (Shell.exec shell "recv mail 25");
  (* eve at others cannot reach alice's endpoint. *)
  ignore (Shell.exec shell "login eve");
  check "eve denied" true (contains (Shell.exec shell "connect mail 25") "error")

let test_audit_and_flow () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  ignore (Shell.exec shell "write /fs/x 1");
  ignore (Shell.exec shell "cat /fs/x");
  let audit = Shell.exec shell "audit 5" in
  check "audit shows grants" true (contains audit "granted");
  check "flow clean" true (contains (Shell.exec shell "flow") "no flow violations")

let test_syslog_commands () =
  let shell = boot () in
  ignore (Shell.exec shell "login eve");
  Alcotest.(check string) "eve appends" "logged" (Shell.exec shell "syslog eve was here");
  check "eve cannot read" true (contains (Shell.exec shell "readlog") "error");
  ignore (Shell.exec shell "login admin");
  check "admin reads" true (contains (Shell.exec shell "readlog") "eve was here")

let test_garbage_never_raises () =
  let shell = boot () in
  List.iter
    (fun line -> ignore (Shell.exec shell line))
    [
      "";
      "   ";
      "frobnicate the bits";
      "login";
      "cat";
      "allow /fs/x wizard:me read";
      "allow /fs/x user: read";
      "setclass /fs/x nolevel";
      "call";
      "kill abc";
      "spawn x notanumber";
      "send mail 25 before connect";
      "login alice nonsense-level";
    ]

let test_policy_boot () =
  let source =
    "levels hi > lo\n\
     individual root\n\
     individual user\n\
     clearance root = hi trusted\n\
     clearance user = lo\n\
     object /fs/motd {\n\
    \  owner root\n\
    \  class lo\n\
    \  allow everyone read list\n\
    \  allow user:root write administrate\n\
     }\n"
  in
  let spec =
    match Exsec_core.Policy_text.parse source with
    | Ok spec -> spec
    | Error _ -> Alcotest.fail "parse"
  in
  let shell =
    match Shell.create ~policy:spec () with
    | Ok shell -> shell
    | Error message -> Alcotest.failf "create: %s" message
  in
  check "login from policy" true (contains (Shell.exec shell "login user") "user@lo");
  (* The policy's object exists with its ACL: world-readable. *)
  Alcotest.(check string) "read motd" "" (Shell.exec shell "cat /fs/motd");
  check "write denied for user" true (contains (Shell.exec shell "write /fs/motd hi") "error")

let suite =
  [
    Alcotest.test_case "boot and whoami" `Quick test_boot_and_whoami;
    Alcotest.test_case "login sessions" `Quick test_login_sessions;
    Alcotest.test_case "file commands" `Quick test_file_commands;
    Alcotest.test_case "protection commands" `Quick test_protection_commands;
    Alcotest.test_case "extensions and calls" `Quick test_extensions_and_calls;
    Alcotest.test_case "threads" `Quick test_threads_commands;
    Alcotest.test_case "network" `Quick test_network_commands;
    Alcotest.test_case "audit and flow" `Quick test_audit_and_flow;
    Alcotest.test_case "syslog" `Quick test_syslog_commands;
    Alcotest.test_case "garbage never raises" `Quick test_garbage_never_raises;
    Alcotest.test_case "policy boot" `Quick test_policy_boot;
  ]

let test_export_roundtrip () =
  let shell = boot () in
  ignore (Shell.exec shell "login alice");
  ignore (Shell.exec shell "write /fs/doc alpha");
  ignore (Shell.exec shell "allow /fs/doc user:bob read");
  let exported = Shell.exec shell "export" in
  check "mentions the file" true (contains exported "object /fs/doc");
  check "mentions the grant" true (contains exported "user:bob read");
  check "mentions clearances" true (contains exported "clearance alice");
  check "no secrets" true (not (contains exported "secret"));
  (* The exported text parses and builds. *)
  match Exsec_core.Policy_text.parse exported with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Exsec_core.Policy_text.pp_error e)
  | Ok spec -> (
    match Exsec_core.Policy_text.build spec with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "build: %s" (Format.asprintf "%a" Exsec_core.Policy_text.pp_error e))

let suite =
  suite @ [ Alcotest.test_case "export roundtrip" `Quick test_export_roundtrip ]

let test_quota_command () =
  let shell = boot () in
  (* Admin throttles eve to 3 calls; the shell's own kernel calls then
     run dry quickly. *)
  Alcotest.(check string) "set" "ok" (Shell.exec shell "quota eve 3");
  ignore (Shell.exec shell "login eve");
  ignore (Shell.exec shell "call /svc/introspect/audit_totals");
  ignore (Shell.exec shell "call /svc/introspect/audit_totals");
  ignore (Shell.exec shell "call /svc/introspect/audit_totals");
  check "budget drained" true
    (contains (Shell.exec shell "call /svc/introspect/audit_totals") "quota");
  ignore (Shell.exec shell "login admin");
  Alcotest.(check string) "clear" "quota cleared" (Shell.exec shell "quota eve off");
  ignore (Shell.exec shell "login eve");
  check "restored" true
    (not (contains (Shell.exec shell "call /svc/introspect/audit_totals") "quota"));
  check "bad args" true (contains (Shell.exec shell "quota eve lots") "error")

let suite = suite @ [ Alcotest.test_case "quota command" `Quick test_quota_command ]

let test_policy_quota_applied () =
  let source =
    "levels a > b\nindividual eve\nclearance eve = b\nquota eve calls=2\n"
  in
  let spec =
    match Exsec_core.Policy_text.parse source with
    | Ok spec -> spec
    | Error _ -> Alcotest.fail "parse"
  in
  let shell =
    match Shell.create ~policy:spec () with
    | Ok shell -> shell
    | Error message -> Alcotest.failf "create: %s" message
  in
  ignore (Shell.exec shell "login eve");
  ignore (Shell.exec shell "call /svc/introspect/audit_totals");
  ignore (Shell.exec shell "call /svc/introspect/audit_totals");
  check "policy quota enforced" true
    (contains (Shell.exec shell "call /svc/introspect/audit_totals") "quota")

let suite =
  suite @ [ Alcotest.test_case "policy quota applied" `Quick test_policy_quota_applied ]
