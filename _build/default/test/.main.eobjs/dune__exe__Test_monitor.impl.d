test/test_monitor.ml: Access_mode Acl Alcotest Audit Category Decision Exsec_core Format Level List Mac Meta Policy Principal Printf Reference_monitor Security_class String Subject
