test/test_namespace.ml: Access_mode Acl Alcotest Category Exsec_core Format Level List Meta Namespace Path Principal QCheck QCheck_alcotest Security_class
