test/test_mbuf.ml: Alcotest Bytes Category Exsec_core Exsec_extsys Exsec_services Kernel Level List Mbuf Path Principal Result Security_class Service Subject Value
