test/test_netstack.ml: Access_mode Acl Alcotest Category Decision Exsec_core Exsec_extsys Exsec_services Format Kernel Level List Mac Netstack Principal Resolver Security_class Service Subject
