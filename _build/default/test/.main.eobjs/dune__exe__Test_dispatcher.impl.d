test/test_dispatcher.ml: Alcotest Category Dispatcher Exsec_core Exsec_extsys Level List Path Principal Printf QCheck QCheck_alcotest Security_class Service Subject Value
