test/test_lattice.ml: Alcotest Category Exsec_core Level List QCheck QCheck_alcotest Security_class
