test/test_path.ml: Alcotest Exsec_core List Path QCheck QCheck_alcotest
