test/test_access_mode.ml: Access_mode Alcotest Exsec_core List Set
