test/test_introspect.ml: Alcotest Category Exsec_core Exsec_extsys Exsec_services Extension Format Introspect Kernel Level Linker List Path Principal Security_class Service Subject Thread Value
