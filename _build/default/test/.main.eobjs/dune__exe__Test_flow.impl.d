test/test_flow.ml: Access_mode Acl Alcotest Array Audit Category Exsec_core Flow Level List Meta Policy Principal Printf QCheck QCheck_alcotest Reference_monitor Security_class String Subject
