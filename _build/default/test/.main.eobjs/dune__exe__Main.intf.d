test/main.mli:
