test/test_acl.ml: Access_mode Acl Alcotest Exsec_core List Principal QCheck QCheck_alcotest
