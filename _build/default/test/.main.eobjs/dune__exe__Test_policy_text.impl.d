test/test_policy_text.ml: Access_mode Alcotest Category Clearance Decision Exsec_core Format List Policy_text Principal Printf QCheck QCheck_alcotest Reference_monitor Security_class String Subject
