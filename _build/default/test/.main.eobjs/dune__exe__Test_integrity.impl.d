test/test_integrity.ml: Access_mode Acl Alcotest Category Decision Exsec_core Format Integrity Level List Mac Meta Policy Principal Reference_monitor Security_class Subject
