test/test_principal.ml: Alcotest Exsec_core List Principal Printf
