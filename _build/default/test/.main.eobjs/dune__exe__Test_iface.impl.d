test/test_iface.ml: Alcotest Exsec_core Exsec_extsys Format Iface List Path Service Value
