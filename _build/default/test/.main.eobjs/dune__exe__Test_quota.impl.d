test/test_quota.ml: Alcotest Category Dispatcher Exsec_core Exsec_extsys Extension Format Kernel Level Linker List Path Principal Quota Security_class Service Subject Thread Value
