test/test_baselines.ml: Afs_acl Alcotest Exsec_baselines Format Java_sandbox List Model Nt_acl Ours Spin_domains String Suite Unix_perms Vino_priv World
