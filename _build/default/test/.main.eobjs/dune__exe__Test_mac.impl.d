test/test_mac.ml: Access_mode Alcotest Category Exsec_core Level List Mac QCheck QCheck_alcotest Security_class
