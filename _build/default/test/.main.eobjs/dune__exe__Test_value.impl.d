test/test_value.ml: Alcotest Bytes Exsec_extsys Format Value
