test/test_shell.ml: Alcotest Exsec_core Exsec_shell Format List Shell String
