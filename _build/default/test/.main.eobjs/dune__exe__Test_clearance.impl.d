test/test_clearance.ml: Alcotest Category Clearance Exsec_core Format Level List Principal QCheck QCheck_alcotest Security_class Subject
