test/test_thread.ml: Alcotest Category Exsec_core Exsec_extsys Level List Meta Principal Printf Sched Security_class Subject Thread
