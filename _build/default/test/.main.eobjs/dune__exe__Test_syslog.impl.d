test/test_syslog.ml: Acl Alcotest Category Decision Exsec_core Exsec_extsys Exsec_services Format Kernel Level List Mac Principal Resolver Security_class Service Subject Syslog
