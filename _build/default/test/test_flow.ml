open Exsec_core

let check = Alcotest.(check bool)

let std () =
  let hierarchy = Level.hierarchy [ "high"; "mid"; "low" ] in
  let universe = Category.universe [ "a" ] in
  hierarchy, universe

let cls hierarchy universe level cats =
  Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)

let open_acl =
  Acl.of_entries
    [ Acl.allow Acl.Everyone [ Access_mode.Read; Access_mode.Write; Access_mode.Write_append ] ]

(* Drive a monitor with the given policy through a fixed script and
   analyse its audit log. *)
let run_script policy =
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let carol = Principal.individual "carol" in
  Principal.Db.add_individual db carol;
  let monitor = Reference_monitor.create ~policy db in
  let subject = Subject.make carol (cls hierarchy universe "mid" []) in
  let high_obj = Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe "high" []) in
  let mid_obj = Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe "mid" []) in
  let low_obj = Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe "low" []) in
  let access meta name mode =
    ignore (Reference_monitor.check monitor ~subject ~meta ~object_name:name ~mode)
  in
  (* Legitimate: read low, write own level, append up. *)
  access low_obj "/low" Access_mode.Read;
  access mid_obj "/mid" Access_mode.Write;
  access high_obj "/high" Access_mode.Write_append;
  (* The leak attempt: read own level, write low. *)
  access mid_obj "/mid" Access_mode.Read;
  access low_obj "/low" Access_mode.Write;
  (* And a read-up attempt. *)
  access high_obj "/high" Access_mode.Read;
  Flow.analyse_log (Reference_monitor.audit monitor)

let test_default_policy_is_clean () =
  let report = run_script Policy.default in
  check "clean" true (Flow.is_clean report);
  Alcotest.(check int) "scanned" 6 report.Flow.scanned;
  (* Write-down and read-up were denied, so only 4 grants replay. *)
  Alcotest.(check int) "grants" 4 report.Flow.grants

let test_dac_only_leaks () =
  let report = run_script Policy.dac_only in
  check "not clean" false (Flow.is_clean report);
  let kinds =
    List.map
      (function
        | Flow.Read_up _ -> "read-up"
        | Flow.Write_down _ -> "write-down"
        | Flow.Transitive_leak _ -> "transitive")
      report.Flow.findings
  in
  check "has write-down" true (List.mem "write-down" kinds);
  check "has read-up" true (List.mem "read-up" kinds);
  check "has transitive" true (List.mem "transitive" kinds)

let test_transitive_leak_detected () =
  (* A subject whose own class equals the sink: the direct write-down
     check passes, only the watermark catches the laundering. *)
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let carol = Principal.individual "carol" in
  Principal.Db.add_individual db carol;
  let monitor = Reference_monitor.create ~policy:Policy.dac_only db in
  let low_subject = Subject.make carol (cls hierarchy universe "low" []) in
  let high_obj = Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe "high" []) in
  let low_obj = Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe "low" []) in
  (* DAC-only admits the read-up; then writing at the subject's own
     level is not a *direct* write-down but is a transitive leak. *)
  ignore (Reference_monitor.check monitor ~subject:low_subject ~meta:high_obj ~object_name:"/h" ~mode:Access_mode.Read);
  ignore (Reference_monitor.check monitor ~subject:low_subject ~meta:low_obj ~object_name:"/l" ~mode:Access_mode.Write);
  let report = Flow.analyse_log (Reference_monitor.audit monitor) in
  let transitive =
    List.filter
      (function
        | Flow.Transitive_leak _ -> true
        | Flow.Read_up _ | Flow.Write_down _ -> false)
      report.Flow.findings
  in
  Alcotest.(check int) "one transitive leak" 1 (List.length transitive)

let test_trusted_subjects_exempt () =
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let root = Principal.individual "root" in
  Principal.Db.add_individual db root;
  let monitor = Reference_monitor.create db in
  let subject = Subject.make ~trusted:true root (cls hierarchy universe "high" []) in
  let low_obj = Meta.make ~owner:root ~acl:open_acl (cls hierarchy universe "low" []) in
  ignore (Reference_monitor.check monitor ~subject ~meta:low_obj ~object_name:"/l" ~mode:Access_mode.Write);
  let report = Flow.analyse_log (Reference_monitor.audit monitor) in
  check "TCB write-down not a finding" true (Flow.is_clean report)

let test_denied_events_ignored () =
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let carol = Principal.individual "carol" in
  Principal.Db.add_individual db carol;
  let monitor = Reference_monitor.create db in
  let subject = Subject.make carol (cls hierarchy universe "low" []) in
  let high_obj = Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe "high" []) in
  (* The read-up is denied by MAC; denials are not flows. *)
  ignore (Reference_monitor.check monitor ~subject ~meta:high_obj ~object_name:"/h" ~mode:Access_mode.Read);
  let report = Flow.analyse_log (Reference_monitor.audit monitor) in
  check "clean" true (Flow.is_clean report);
  Alcotest.(check int) "no grants" 0 report.Flow.grants

(* Property: under the default policy, any sequence of accesses by a
   subject at a fixed class leaves a clean trail (Denning soundness
   end-to-end through the monitor).  The class must be fixed per
   principal: re-logging the same principal at different levels is
   itself a channel the monitor does not police — login policy does
   (see Clearance). *)
let prop_default_policy_always_clean =
  let hierarchy, universe = std () in
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair (int_range 0 2)
          (list_size (int_range 1 40) (pair (int_range 0 2) (oneofl Access_mode.all))))
  in
  QCheck.Test.make ~name:"default policy leaves clean flow trails" ~count:100 arb
    (fun (subject_level, script) ->
      let db = Principal.Db.create () in
      let carol = Principal.individual "carol" in
      Principal.Db.add_individual db carol;
      let monitor = Reference_monitor.create db in
      let level i = List.nth [ "high"; "mid"; "low" ] i in
      let metas =
        Array.init 3 (fun i ->
            Meta.make ~owner:carol ~acl:open_acl (cls hierarchy universe (level i) []))
      in
      let subject = Subject.make carol (cls hierarchy universe (level subject_level) []) in
      List.iter
        (fun (object_index, mode) ->
          ignore
            (Reference_monitor.check monitor ~subject ~meta:metas.(object_index)
               ~object_name:(Printf.sprintf "/o%d" object_index) ~mode))
        script;
      Flow.is_clean (Flow.analyse_log (Reference_monitor.audit monitor)))

let suite =
  [
    Alcotest.test_case "default policy clean" `Quick test_default_policy_is_clean;
    Alcotest.test_case "dac-only leaks" `Quick test_dac_only_leaks;
    Alcotest.test_case "transitive leak" `Quick test_transitive_leak_detected;
    Alcotest.test_case "trusted exempt" `Quick test_trusted_subjects_exempt;
    Alcotest.test_case "denied events ignored" `Quick test_denied_events_ignored;
    QCheck_alcotest.to_alcotest prop_default_policy_always_clean;
  ]

let test_cross_principal_laundering () =
  (* Under DAC-only: courier reads high, writes low object O (flagged,
     but it happened); mule — a different principal — reads O (class
     low: no read-up for the mule) and writes another low object.
     Only object-watermark propagation catches the mule's write. *)
  let hierarchy, universe = std () in
  let db = Principal.Db.create () in
  let courier = Principal.individual "courier" in
  let mule = Principal.individual "mule" in
  Principal.Db.add_individual db courier;
  Principal.Db.add_individual db mule;
  let monitor = Reference_monitor.create ~policy:Policy.dac_only db in
  let low = cls hierarchy universe "low" [] in
  let high_obj = Meta.make ~owner:courier ~acl:open_acl (cls hierarchy universe "high" []) in
  let dropbox = Meta.make ~owner:courier ~acl:open_acl low in
  let exfil = Meta.make ~owner:mule ~acl:open_acl low in
  let courier_sub = Subject.make courier low in
  let mule_sub = Subject.make mule low in
  ignore (Reference_monitor.check monitor ~subject:courier_sub ~meta:high_obj ~object_name:"/high" ~mode:Access_mode.Read);
  ignore (Reference_monitor.check monitor ~subject:courier_sub ~meta:dropbox ~object_name:"/dropbox" ~mode:Access_mode.Write);
  ignore (Reference_monitor.check monitor ~subject:mule_sub ~meta:dropbox ~object_name:"/dropbox" ~mode:Access_mode.Read);
  ignore (Reference_monitor.check monitor ~subject:mule_sub ~meta:exfil ~object_name:"/exfil" ~mode:Access_mode.Write);
  let report = Flow.analyse_log (Reference_monitor.audit monitor) in
  (* The mule's final write must be flagged even though every one of
     the mule's own accesses was class-legal in isolation. *)
  let mule_flagged =
    List.exists
      (function
        | Flow.Transitive_leak { event; _ } ->
          String.equal event.Audit.object_name "/exfil"
        | Flow.Read_up _ | Flow.Write_down _ -> false)
      report.Flow.findings
  in
  check "laundering via the dropbox is caught" true mule_flagged

let suite =
  suite
  @ [ Alcotest.test_case "cross-principal laundering" `Quick test_cross_principal_laundering ]
