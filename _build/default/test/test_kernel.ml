open Exsec_core
open Exsec_extsys

let check = Alcotest.(check bool)

let boot () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let alice = Principal.individual "alice" in
  let eve = Principal.individual "eve" in
  List.iter (Principal.Db.add_individual db) [ admin; alice; eve ];
  let hierarchy = Level.hierarchy [ "local"; "org"; "outside" ] in
  let universe = Category.universe [ "d1"; "d2" ] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  kernel, admin, alice, eve

let cls kernel level cats =
  Security_class.make
    (Level.of_name_exn (Kernel.hierarchy kernel) level)
    (Category.of_names (Kernel.universe kernel) cats)

let ok label = function
  | Ok value -> value
  | Error e -> Alcotest.failf "%s: %s" label (Service.error_to_string e)

let test_boot_layout () =
  let kernel, _, _, _ = boot () in
  let ns = Kernel.namespace kernel in
  List.iter
    (fun name -> check name true (Namespace.mem ns (Path.of_string name)))
    [ "/svc"; "/ext"; "/threads" ];
  Alcotest.(check int) "node count" 4 (Namespace.size ns)

let test_install_and_call_proc () =
  let kernel, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let double =
    Service.proc "double" 1 (fun _ctx args ->
        Ok (Value.int (2 * Value.to_int_exn (List.hd args))))
  in
  let meta = Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) () in
  let () = ok "dir" (Kernel.add_dir kernel ~subject:admin_sub (Path.of_string "/svc/math") ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ())) in
  let () = ok "install" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/math/double") ~meta double) in
  let alice_sub = Subject.make alice (cls kernel "org" [ "d1" ]) in
  let result = ok "call" (Kernel.call kernel ~subject:alice_sub ~caller:"test" (Path.of_string "/svc/math/double") [ Value.int 21 ]) in
  check "result" true (Value.equal result (Value.int 42))

let test_call_checks_execute () =
  let kernel, admin, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  (* A procedure only admin may call. *)
  let secret = Service.proc "secret" 0 (Service.const Value.unit) in
  let meta =
    Meta.make ~owner:admin
      ~acl:(Acl.of_entries [ Acl.allow_all (Acl.Individual admin); Acl.allow Acl.Everyone [ Access_mode.List ] ])
      (Security_class.bottom (Kernel.hierarchy kernel) (Kernel.universe kernel))
  in
  let () = ok "install" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/secret") ~meta secret) in
  let alice_sub = Subject.make alice (cls kernel "local" []) in
  (match Kernel.call kernel ~subject:alice_sub ~caller:"test" (Path.of_string "/svc/secret") [] with
  | Error (Service.Denied { mode = Access_mode.Execute; _ }) -> ()
  | _ -> Alcotest.fail "expected execute denial");
  (* ... unless checking is disabled (link-time-checked fast path). *)
  let _ = ok "unchecked" (Kernel.call ~checked:false kernel ~subject:alice_sub ~caller:"test" (Path.of_string "/svc/secret") []) in
  ()

let test_mac_gates_calls () =
  let kernel, admin, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  (* A service classified high: low callers cannot even execute it
     (execute is read-like). *)
  let meta =
    Meta.make ~owner:admin
      ~acl:(Acl.of_entries [ Acl.allow_all (Acl.Individual admin); Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Execute ] ])
      (cls kernel "local" [])
  in
  let () = ok "install" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/high") ~meta (Service.proc "high" 0 (Service.const Value.unit))) in
  let low = Subject.make alice (cls kernel "outside" []) in
  let high = Subject.make alice (cls kernel "local" []) in
  (match Kernel.call kernel ~subject:low ~caller:"t" (Path.of_string "/svc/high") [] with
  | Error (Service.Denied { denial = Decision.Mac_denied Mac.Read_up; _ }) -> ()
  | _ -> Alcotest.fail "expected MAC read-up");
  let _ = ok "high calls" (Kernel.call kernel ~subject:high ~caller:"t" (Path.of_string "/svc/high") []) in
  ()

let test_arity_checked () =
  let kernel, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let meta = Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) () in
  let () = ok "install" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/one") ~meta (Service.proc "one" 1 (Service.const Value.unit))) in
  let alice_sub = Subject.make alice (cls kernel "local" []) in
  match Kernel.call kernel ~subject:alice_sub ~caller:"t" (Path.of_string "/svc/one") [] with
  | Error (Service.Bad_arity { expected = 1; got = 0; _ }) -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_call_not_callable () =
  let kernel, _, alice, _ = boot () in
  (* Even with every right, a directory is not callable. *)
  (match Kernel.call kernel ~subject:(Kernel.admin_subject kernel) ~caller:"t" (Path.of_string "/svc") [] with
  | Error (Service.Unresolved _) -> ()
  | _ -> Alcotest.fail "called a directory");
  let alice_sub = Subject.make alice (cls kernel "local" []) in
  match Kernel.call kernel ~subject:alice_sub ~caller:"t" (Path.of_string "/svc/ghost") [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "called a ghost"

let test_events_dispatch_by_class () =
  let kernel, _, alice, eve = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let event = Path.of_string "/svc/render" in
  let () = ok "event" (Kernel.install_event kernel ~subject:admin_sub event ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ())) in
  Dispatcher.register (Kernel.dispatcher kernel) ~event
    { Dispatcher.owner = "fancy"; klass = cls kernel "local" []; guard = None;
      impl = (fun _ _ -> Ok (Value.str "fancy")) };
  Dispatcher.register (Kernel.dispatcher kernel) ~event
    { Dispatcher.owner = "plain"; klass = cls kernel "outside" []; guard = None;
      impl = (fun _ _ -> Ok (Value.str "plain")) };
  let local_sub = Subject.make alice (cls kernel "local" []) in
  let out_sub = Subject.make eve (cls kernel "outside" []) in
  let r1 = ok "local" (Kernel.call kernel ~subject:local_sub ~caller:"t" event []) in
  check "local gets fancy" true (Value.equal r1 (Value.str "fancy"));
  let r2 = ok "outside" (Kernel.call kernel ~subject:out_sub ~caller:"t" event []) in
  check "outside gets plain" true (Value.equal r2 (Value.str "plain"))

let test_event_no_handler () =
  let kernel, _, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let event = Path.of_string "/svc/lonely" in
  let () = ok "event" (Kernel.install_event kernel ~subject:admin_sub event ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ())) in
  match Kernel.call kernel ~subject:(Subject.make alice (cls kernel "local" [])) ~caller:"t" event [] with
  | Error (Service.No_handler _) -> ()
  | _ -> Alcotest.fail "expected No_handler"

let test_handler_runs_capped () =
  let kernel, admin, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let event = Path.of_string "/svc/capped" in
  let () = ok "event" (Kernel.install_event kernel ~subject:admin_sub event ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ())) in
  (* A high-classified victim procedure. *)
  let victim_meta =
    Meta.make ~owner:admin
      ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Execute ] ])
      (cls kernel "local" [])
  in
  let () = ok "victim" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/victim") ~meta:victim_meta (Service.proc "victim" 0 (Service.const (Value.str "loot")))) in
  (* The handler is pinned at outside: even when a local subject
     raises the event, the handler must not reach the victim. *)
  Dispatcher.register (Kernel.dispatcher kernel) ~event
    {
      Dispatcher.owner = "pinned";
      klass = cls kernel "outside" [];
      guard = None;
      impl = (fun ctx _ -> ctx.Service.call (Path.of_string "/svc/victim") []);
    };
  let local_sub = Subject.make alice (cls kernel "local" []) in
  match Kernel.call kernel ~subject:local_sub ~caller:"t" event [] with
  | Error (Service.Denied { denial = Decision.Mac_denied Mac.Read_up; _ }) -> ()
  | Ok _ -> Alcotest.fail "pinned handler laundered authority"
  | Error other -> Alcotest.failf "unexpected: %s" (Service.error_to_string other)

let test_spawn_and_kill_own_thread () =
  let kernel, _, alice, _ = boot () in
  let alice_sub = Subject.make alice (cls kernel "org" [ "d1" ]) in
  let counter = ref 0 in
  let body () =
    incr counter;
    if !counter >= 3 then Thread.Finished else Thread.Runnable
  in
  let thread = ok "spawn" (Kernel.spawn kernel ~subject:alice_sub ~name:"worker" ~body) in
  check "registered" true (Namespace.mem (Kernel.namespace kernel) (Path.of_string (Printf.sprintf "/threads/t%d" (Thread.id thread))));
  let quanta = Kernel.run kernel in
  Alcotest.(check int) "three quanta" 3 quanta;
  check "done" true (Thread.state thread = Thread.Done)

let test_kill_requires_delete () =
  let kernel, _, alice, eve = boot () in
  let alice_sub = Subject.make alice (cls kernel "org" [ "d1" ]) in
  let eve_sub = Subject.make eve (cls kernel "org" [ "d2" ]) in
  let immortal () = Thread.Runnable in
  let thread = ok "spawn" (Kernel.spawn kernel ~subject:alice_sub ~name:"victim" ~body:immortal) in
  (* eve's class is incomparable with alice's and she is not on the
     thread's ACL: both layers refuse. *)
  (match Kernel.kill kernel ~subject:eve_sub ~victim:(Thread.id thread) with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "eve killed alice's thread");
  check "still alive" true (Thread.is_alive thread);
  let () = ok "self kill" (Kernel.kill kernel ~subject:alice_sub ~victim:(Thread.id thread)) in
  check "killed" true (Thread.state thread = Thread.Killed)

let suite =
  [
    Alcotest.test_case "boot layout" `Quick test_boot_layout;
    Alcotest.test_case "install and call" `Quick test_install_and_call_proc;
    Alcotest.test_case "call checks execute" `Quick test_call_checks_execute;
    Alcotest.test_case "MAC gates calls" `Quick test_mac_gates_calls;
    Alcotest.test_case "arity checked" `Quick test_arity_checked;
    Alcotest.test_case "not callable" `Quick test_call_not_callable;
    Alcotest.test_case "events dispatch by class" `Quick test_events_dispatch_by_class;
    Alcotest.test_case "event without handler" `Quick test_event_no_handler;
    Alcotest.test_case "handler runs capped" `Quick test_handler_runs_capped;
    Alcotest.test_case "spawn and run threads" `Quick test_spawn_and_kill_own_thread;
    Alcotest.test_case "kill requires delete" `Quick test_kill_requires_delete;
  ]

let test_broadcast () =
  let kernel, _, alice, eve = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let event = Path.of_string "/svc/tick" in
  let () = ok "event" (Kernel.install_event kernel ~subject:admin_sub event ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ())) in
  let register owner level tag =
    Dispatcher.register (Kernel.dispatcher kernel) ~event
      { Dispatcher.owner; klass = cls kernel level []; guard = None;
        impl = (fun _ _ -> Ok (Value.str tag)) }
  in
  register "logger" "outside" "logged";
  register "cache" "org" "flushed";
  register "secure" "local" "sealed";
  (* A local subject reaches all three, most specific first. *)
  let local_sub = Subject.make alice (cls kernel "local" []) in
  (match Kernel.broadcast kernel ~subject:local_sub ~caller:"t" event [] with
  | Ok results ->
    Alcotest.(check (list string)) "all three, ordered" [ "secure"; "cache"; "logger" ]
      (List.map fst results);
    check "all ok" true (List.for_all (fun (_, r) -> Result.is_ok r) results)
  | Error e -> Alcotest.failf "broadcast: %s" (Service.error_to_string e));
  (* An outside subject reaches only the outside handler. *)
  let out_sub = Subject.make eve (cls kernel "outside" []) in
  (match Kernel.broadcast kernel ~subject:out_sub ~caller:"t" event [] with
  | Ok results -> Alcotest.(check (list string)) "one handler" [ "logger" ] (List.map fst results)
  | Error e -> Alcotest.failf "broadcast: %s" (Service.error_to_string e));
  (* Broadcasting a plain procedure is an error. *)
  let () = ok "proc" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/plain") ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ()) (Service.proc "plain" 0 (Service.const Value.unit))) in
  match Kernel.broadcast kernel ~subject:local_sub ~caller:"t" (Path.of_string "/svc/plain") [] with
  | Error (Service.Unresolved _) -> ()
  | _ -> Alcotest.fail "broadcast a procedure"

let test_broadcast_caps_handlers () =
  let kernel, admin, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  let event = Path.of_string "/svc/fanout" in
  let () = ok "event" (Kernel.install_event kernel ~subject:admin_sub event ~meta:(Kernel.default_meta kernel ~owner:(Subject.principal admin_sub) ())) in
  (* A victim only high subjects may call. *)
  let victim_meta =
    Meta.make ~owner:admin
      ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Execute ] ])
      (cls kernel "local" [])
  in
  let () = ok "victim" (Kernel.install_proc kernel ~subject:admin_sub (Path.of_string "/svc/jewels") ~meta:victim_meta (Service.proc "jewels" 0 (Service.const (Value.str "gold")))) in
  (* A low-pinned handler that tries to grab the jewels during the
     broadcast. *)
  Dispatcher.register (Kernel.dispatcher kernel) ~event
    { Dispatcher.owner = "thief"; klass = cls kernel "outside" []; guard = None;
      impl = (fun ctx _ -> ctx.Service.call (Path.of_string "/svc/jewels") []) };
  let local_sub = Subject.make alice (cls kernel "local" []) in
  match Kernel.broadcast kernel ~subject:local_sub ~caller:"t" event [] with
  | Ok [ ("thief", Error (Service.Denied { denial = Decision.Mac_denied Mac.Read_up; _ })) ] -> ()
  | Ok _ -> Alcotest.fail "thief handler was not capped"
  | Error e -> Alcotest.failf "broadcast: %s" (Service.error_to_string e)

let suite =
  suite
  @ [
      Alcotest.test_case "broadcast" `Quick test_broadcast;
      Alcotest.test_case "broadcast caps handlers" `Quick test_broadcast_caps_handlers;
    ]
