open Exsec_core
open Exsec_workload

let check = Alcotest.(check bool)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check "same stream" true (Int64.equal (Prng.next a) (Prng.next b))
  done;
  let c = Prng.create ~seed:43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next a) (Prng.next c)) then differs := true
  done;
  check "different seed differs" true !differs

let test_prng_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    check "in range" true (v >= 0 && v < 10);
    let f = Prng.float rng in
    check "float range" true (f >= 0.0 && f < 1.0)
  done;
  match Prng.int rng 0 with
  | _ -> Alcotest.fail "zero bound accepted"
  | exception Invalid_argument _ -> ()

let test_prng_distribution () =
  (* Crude uniformity check: every bucket of 8 gets something in 4000
     draws. *)
  let rng = Prng.create ~seed:1 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 4000 do
    let v = Prng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri (fun i n -> check (Printf.sprintf "bucket %d populated" i) true (n > 300)) buckets

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:5 in
  let items = Array.init 20 Fun.id in
  Prng.shuffle rng items;
  let sorted = Array.copy items in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 Fun.id) sorted

let test_gen_principal_db () =
  let rng = Prng.create ~seed:11 in
  let db, inds, grps = Gen.principal_db rng ~individuals:20 ~groups:4 ~density:0.5 in
  Alcotest.(check int) "individuals" 20 (List.length inds);
  Alcotest.(check int) "groups" 4 (List.length grps);
  (* Density 0.5 over 80 slots: membership exists but is not total. *)
  let memberships =
    List.concat_map (fun g -> List.filter (fun i -> Principal.Db.is_member db i g) inds) grps
  in
  check "some members" true (List.length memberships > 10);
  check "not everybody" true (List.length memberships < 80)

let test_gen_acl_shape () =
  let rng = Prng.create ~seed:13 in
  let _, inds, grps = Gen.principal_db rng ~individuals:10 ~groups:2 ~density:0.3 in
  let acl = Gen.acl rng ~individuals:inds ~groups:grps ~length:32 ~deny_fraction:0.25 in
  Alcotest.(check int) "length" 32 (Acl.length acl);
  let denies = List.filter (fun e -> e.Acl.sign = Acl.Deny) (Acl.entries acl) in
  check "some denies" true (List.length denies > 0);
  check "mostly allows" true (List.length denies < 20)

let test_gen_acl_with_subject_at () =
  let rng = Prng.create ~seed:17 in
  let db, inds, _ = Gen.principal_db rng ~individuals:10 ~groups:0 ~density:0.0 in
  let subject = List.hd inds in
  let fillers = List.tl inds in
  let acl =
    Gen.acl_with_subject_at rng ~subject ~mode:Access_mode.Read ~filler_individuals:fillers
      ~position:15 ~length:16
  in
  Alcotest.(check int) "length" 16 (Acl.length acl);
  check "subject granted" true (Acl.permits ~db ~subject ~mode:Access_mode.Read acl);
  (* Nobody else's entry matches the subject. *)
  let hits =
    List.filter
      (fun e ->
        match e.Acl.who with
        | Acl.Individual ind -> Principal.equal_individual ind subject
        | Acl.Group _ | Acl.Everyone -> false)
      (Acl.entries acl)
  in
  Alcotest.(check int) "exactly one subject entry" 1 (List.length hits)

let test_gen_lattice_and_class () =
  let rng = Prng.create ~seed:19 in
  let hierarchy, universe = Gen.lattice ~levels:4 ~categories:6 in
  Alcotest.(check int) "levels" 4 (List.length (Level.names hierarchy));
  Alcotest.(check int) "categories" 6 (Category.universe_size universe);
  for _ = 1 to 50 do
    let cls = Gen.security_class rng hierarchy universe in
    check "class well-formed" true
      (Security_class.dominates (Security_class.top hierarchy universe) cls)
  done

let test_gen_chain_namespace () =
  let hierarchy, universe = Gen.lattice ~levels:2 ~categories:1 in
  let owner = Principal.individual "owner" in
  let ns =
    Namespace.create
      ~root_meta:
        (Meta.make ~owner
           ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List ] ])
           (Security_class.bottom hierarchy universe))
      ()
  in
  let leaf =
    Gen.chain ns ~owner ~klass:(Security_class.bottom hierarchy universe) ~depth:10 ~leaf:0
  in
  Alcotest.(check int) "leaf depth" 11 (Path.depth leaf);
  check "leaf exists" true (Namespace.mem ns leaf);
  Alcotest.(check int) "node count" 12 (Namespace.size ns)

let test_gen_tree_namespace () =
  let hierarchy, universe = Gen.lattice ~levels:2 ~categories:1 in
  let owner = Principal.individual "owner" in
  let ns =
    Namespace.create
      ~root_meta:
        (Meta.make ~owner
           ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List ] ])
           (Security_class.bottom hierarchy universe))
      ()
  in
  let leaves =
    Gen.populate_tree ns ~owner
      ~klass:(Security_class.bottom hierarchy universe)
      ~depth:3 ~fanout:3
      ~leaf:(fun _ -> 0)
  in
  Alcotest.(check int) "3^3 leaves" 27 (List.length leaves);
  List.iter (fun leaf -> check "leaf present" true (Namespace.mem ns leaf)) leaves

let test_scenario_matches_paper () =
  let scenario = Scenario.build () in
  List.iter
    (fun (subject_name, _) ->
      List.iter
        (fun file ->
          let expected = Scenario.expected_read ~subject_name ~file in
          let measured = Scenario.measured_read scenario ~subject_name ~file in
          if expected <> measured then
            Alcotest.failf "%s reading %s: expected %b, measured %b" subject_name file
              expected measured)
        Scenario.files)
    (Scenario.subjects scenario)

let test_scenario_write_rules () =
  let scenario = Scenario.build () in
  let fs = scenario.Scenario.fs in
  (* The d1 applet cannot deface the outside drop box (write-down)... *)
  (match Exsec_services.Memfs.write fs ~subject:scenario.Scenario.d1_applet "outside-data" "x" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "write-down allowed");
  (* ...but may append upward into the user's file?  No: the user
     file's categories are a superset, so append flows up. *)
  match Exsec_services.Memfs.append fs ~subject:scenario.Scenario.d1_applet "user-data" "+note" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "append up refused: %s" (Exsec_extsys.Service.error_to_string e)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng distribution" `Quick test_prng_distribution;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "gen principal db" `Quick test_gen_principal_db;
    Alcotest.test_case "gen acl" `Quick test_gen_acl_shape;
    Alcotest.test_case "gen acl with subject" `Quick test_gen_acl_with_subject_at;
    Alcotest.test_case "gen lattice" `Quick test_gen_lattice_and_class;
    Alcotest.test_case "gen chain" `Quick test_gen_chain_namespace;
    Alcotest.test_case "gen tree" `Quick test_gen_tree_namespace;
    Alcotest.test_case "scenario read matrix" `Quick test_scenario_matches_paper;
    Alcotest.test_case "scenario write rules" `Quick test_scenario_write_rules;
  ]

let test_prng_subset_density () =
  let rng = Prng.create ~seed:23 in
  let items = List.init 1000 Fun.id in
  let none = Prng.subset rng ~density:0.0 items in
  let all = Prng.subset rng ~density:1.0 items in
  let half = Prng.subset rng ~density:0.5 items in
  Alcotest.(check int) "density 0" 0 (List.length none);
  Alcotest.(check int) "density 1" 1000 (List.length all);
  check "density 0.5 in band" true
    (List.length half > 400 && List.length half < 600)

let test_scenario_unknown_names () =
  (match Scenario.expected_read ~subject_name:"nobody" ~file:"user-data" with
  | _ -> Alcotest.fail "unknown subject accepted"
  | exception Invalid_argument _ -> ());
  let scenario = Scenario.build () in
  match Scenario.measured_read scenario ~subject_name:"nobody" ~file:"user-data" with
  | _ -> Alcotest.fail "unknown subject accepted"
  | exception Invalid_argument _ -> ()

let test_gen_acl_position_validation () =
  let rng = Prng.create ~seed:3 in
  let _, inds, _ = Gen.principal_db rng ~individuals:4 ~groups:0 ~density:0.0 in
  match
    Gen.acl_with_subject_at rng ~subject:(List.hd inds) ~mode:Access_mode.Read
      ~filler_individuals:(List.tl inds) ~position:8 ~length:4
  with
  | _ -> Alcotest.fail "bad position accepted"
  | exception Invalid_argument _ -> ()

let suite =
  suite
  @ [
      Alcotest.test_case "prng subset density" `Quick test_prng_subset_density;
      Alcotest.test_case "scenario unknown names" `Quick test_scenario_unknown_names;
      Alcotest.test_case "gen acl position" `Quick test_gen_acl_position_validation;
    ]
