open Exsec_core

let check = Alcotest.(check bool)

let std () =
  let hierarchy = Level.hierarchy [ "local"; "org"; "outside" ] in
  let universe = Category.universe [ "d1"; "d2" ] in
  hierarchy, universe

let cls hierarchy universe level cats =
  Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)

let test_login_at_clearance () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  let clearance = cls hierarchy universe "local" [ "d1" ] in
  Clearance.register registry alice clearance;
  match Clearance.login registry alice with
  | Ok subject ->
    check "class" true (Security_class.equal (Subject.effective_class subject) clearance);
    check "principal" true (Principal.equal_individual (Subject.principal subject) alice);
    check "not trusted" false (Subject.is_trusted subject)
  | Error e -> Alcotest.failf "login: %s" (Format.asprintf "%a" Clearance.pp_error e)

let test_login_below_clearance () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  Clearance.register registry alice (cls hierarchy universe "local" [ "d1"; "d2" ]);
  let low = cls hierarchy universe "org" [ "d1" ] in
  match Clearance.login registry ~at:low alice with
  | Ok subject ->
    check "session at requested class" true
      (Security_class.equal (Subject.effective_class subject) low)
  | Error _ -> Alcotest.fail "login below clearance refused"

let test_login_above_clearance_refused () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  Clearance.register registry alice (cls hierarchy universe "org" [ "d1" ]);
  (match Clearance.login registry ~at:(cls hierarchy universe "local" [ "d1" ]) alice with
  | Error (Clearance.Above_clearance _) -> ()
  | _ -> Alcotest.fail "level raise admitted");
  (* Sideways (incomparable) is also above-clearance. *)
  match Clearance.login registry ~at:(cls hierarchy universe "org" [ "d2" ]) alice with
  | Error (Clearance.Above_clearance _) -> ()
  | _ -> Alcotest.fail "category swap admitted"

let test_unknown_principal () =
  let registry = Clearance.create () in
  match Clearance.login registry (Principal.individual "ghost") with
  | Error (Clearance.Unknown_principal _) -> ()
  | _ -> Alcotest.fail "ghost logged in"

let test_authenticate () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  Clearance.register registry ~secret:"hunter2" alice (cls hierarchy universe "local" []);
  (match Clearance.authenticate registry ~secret:"hunter2" alice with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "correct secret refused");
  (match Clearance.authenticate registry ~secret:"wrong" alice with
  | Error Clearance.Bad_secret -> ()
  | _ -> Alcotest.fail "wrong secret accepted");
  (* Principals without a secret never authenticate. *)
  let bob = Principal.individual "bob" in
  Clearance.register registry bob (cls hierarchy universe "org" []);
  match Clearance.authenticate registry ~secret:"" bob with
  | Error Clearance.Bad_secret -> ()
  | _ -> Alcotest.fail "secretless principal authenticated"

let test_trusted_and_integrity_flow_through () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let root = Principal.individual "root" in
  let integrity = cls hierarchy universe "local" [] in
  Clearance.register registry ~trusted:true ~integrity root (cls hierarchy universe "local" [ "d1"; "d2" ]);
  match Clearance.login registry root with
  | Ok subject ->
    check "trusted" true (Subject.is_trusted subject);
    (match Subject.integrity subject with
    | Some i -> check "integrity" true (Security_class.equal i integrity)
    | None -> Alcotest.fail "integrity lost")
  | Error _ -> Alcotest.fail "root login failed"

let test_revoke () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  Clearance.register registry alice (cls hierarchy universe "org" []);
  check "registered" true (Clearance.is_registered registry alice);
  Clearance.revoke registry alice;
  check "revoked" false (Clearance.is_registered registry alice);
  match Clearance.login registry alice with
  | Error (Clearance.Unknown_principal _) -> ()
  | _ -> Alcotest.fail "revoked principal logged in"

let test_re_register_replaces () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  Clearance.register registry alice (cls hierarchy universe "local" [ "d1" ]);
  Clearance.register registry alice (cls hierarchy universe "outside" []);
  match Clearance.clearance_of registry alice with
  | Some clearance ->
    Alcotest.(check string) "demoted" "outside" (Level.name (Security_class.level clearance))
  | None -> Alcotest.fail "lost registration"

let test_registered_listing () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  List.iter
    (fun name ->
      Clearance.register registry (Principal.individual name)
        (cls hierarchy universe "org" []))
    [ "zoe"; "alice" ];
  Alcotest.(check (list string)) "sorted" [ "alice"; "zoe" ]
    (List.map Principal.individual_name (Clearance.registered registry))

(* Property: a session issued by login never exceeds the registered
   clearance. *)
let prop_sessions_bounded =
  let hierarchy, universe = std () in
  let arb =
    QCheck.make
      QCheck.Gen.(
        let cls_gen =
          let* level = oneofl (Level.names hierarchy) in
          let* d1 = bool in
          let* d2 = bool in
          let cats =
            List.concat [ (if d1 then [ "d1" ] else []); (if d2 then [ "d2" ] else []) ]
          in
          return (cls hierarchy universe level cats)
        in
        pair cls_gen cls_gen)
  in
  QCheck.Test.make ~name:"sessions never exceed clearance" ~count:300 arb
    (fun (clearance, requested) ->
      let registry = Clearance.create () in
      let alice = Principal.individual "alice" in
      Clearance.register registry alice clearance;
      match Clearance.login registry ~at:requested alice with
      | Ok subject ->
        Security_class.dominates clearance (Subject.effective_class subject)
      | Error (Clearance.Above_clearance _) ->
        not (Security_class.dominates clearance requested)
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "login at clearance" `Quick test_login_at_clearance;
    Alcotest.test_case "login below clearance" `Quick test_login_below_clearance;
    Alcotest.test_case "login above refused" `Quick test_login_above_clearance_refused;
    Alcotest.test_case "unknown principal" `Quick test_unknown_principal;
    Alcotest.test_case "authenticate" `Quick test_authenticate;
    Alcotest.test_case "trusted/integrity flow through" `Quick test_trusted_and_integrity_flow_through;
    Alcotest.test_case "revoke" `Quick test_revoke;
    Alcotest.test_case "re-register replaces" `Quick test_re_register_replaces;
    Alcotest.test_case "registered listing" `Quick test_registered_listing;
    QCheck_alcotest.to_alcotest prop_sessions_bounded;
  ]

let test_authenticate_with_session_class () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let alice = Principal.individual "alice" in
  Clearance.register registry ~secret:"s3cret" alice (cls hierarchy universe "local" [ "d1" ]);
  (match
     Clearance.authenticate registry ~secret:"s3cret"
       ~at:(cls hierarchy universe "org" []) alice
   with
  | Ok subject ->
    Alcotest.(check string) "session level" "org"
      (Level.name (Security_class.level (Subject.effective_class subject)))
  | Error _ -> Alcotest.fail "authenticate below clearance");
  match
    Clearance.authenticate registry ~secret:"s3cret"
      ~at:(cls hierarchy universe "local" [ "d1"; "d2" ]) alice
  with
  | Error (Clearance.Above_clearance _) -> ()
  | _ -> Alcotest.fail "authenticate above clearance"

let test_detail_of () =
  let hierarchy, universe = std () in
  let registry = Clearance.create () in
  let root = Principal.individual "root" in
  let integrity = cls hierarchy universe "local" [] in
  Clearance.register registry ~trusted:true ~integrity root (cls hierarchy universe "local" []);
  (match Clearance.detail_of registry root with
  | Some detail ->
    check "trusted" true detail.Clearance.trusted;
    check "integrity kept" true (detail.Clearance.integrity <> None)
  | None -> Alcotest.fail "missing detail");
  check "unknown" true (Clearance.detail_of registry (Principal.individual "ghost") = None)

let suite =
  suite
  @ [
      Alcotest.test_case "authenticate at session class" `Quick test_authenticate_with_session_class;
      Alcotest.test_case "detail_of" `Quick test_detail_of;
    ]
