open Exsec_core
open Exsec_extsys
open Exsec_services

let check = Alcotest.(check bool)

let boot () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let alice = Principal.individual "alice" in
  let bob = Principal.individual "bob" in
  List.iter (Principal.Db.add_individual db) [ admin; alice; bob ];
  let hierarchy = Level.hierarchy [ "hi"; "mid"; "lo" ] in
  let universe = Category.universe [ "a"; "b" ] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let fs =
    match Memfs.mount kernel ~subject:(Kernel.admin_subject kernel) () with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "mount: %s" (Service.error_to_string e)
  in
  kernel, fs, alice, bob

let cls kernel level cats =
  Security_class.make
    (Level.of_name_exn (Kernel.hierarchy kernel) level)
    (Category.of_names (Kernel.universe kernel) cats)

let ok label = function
  | Ok value -> value
  | Error e -> Alcotest.failf "%s: %s" label (Service.error_to_string e)

let test_create_read_write () =
  let kernel, fs, alice, _ = boot () in
  let subject = Subject.make alice (cls kernel "lo" []) in
  let () = ok "create" (Memfs.create fs ~subject "note" "v1") in
  Alcotest.(check string) "read" "v1" (ok "read" (Memfs.read fs ~subject "note"));
  let () = ok "write" (Memfs.write fs ~subject "note" "v2") in
  Alcotest.(check string) "after write" "v2" (ok "read2" (Memfs.read fs ~subject "note"));
  let () = ok "append" (Memfs.append fs ~subject "note" "+") in
  Alcotest.(check string) "after append" "v2+" (ok "read3" (Memfs.read fs ~subject "note"));
  check "exists" true (Memfs.exists fs "note")

let test_owner_isolation () =
  let kernel, fs, alice, bob = boot () in
  let alice_sub = Subject.make alice (cls kernel "lo" []) in
  let bob_sub = Subject.make bob (cls kernel "lo" []) in
  let () = ok "create" (Memfs.create fs ~subject:alice_sub "private" "secret") in
  (match Memfs.read fs ~subject:bob_sub "private" with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "bob read alice's file");
  (match Memfs.write fs ~subject:bob_sub "private" "defaced" with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "bob wrote alice's file");
  match Memfs.remove fs ~subject:bob_sub "private" with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "bob removed alice's file"

let test_acl_grant () =
  let kernel, fs, alice, bob = boot () in
  let alice_sub = Subject.make alice (cls kernel "lo" []) in
  let bob_sub = Subject.make bob (cls kernel "lo" []) in
  let () = ok "create" (Memfs.create fs ~subject:alice_sub "shared" "data") in
  let () =
    ok "set_acl"
      (Memfs.set_acl fs ~subject:alice_sub "shared"
         (Acl.of_entries
            [
              Acl.allow_all (Acl.Individual alice);
              Acl.allow (Acl.Individual bob) [ Access_mode.Read; Access_mode.Write_append ];
            ]))
  in
  Alcotest.(check string) "bob reads" "data" (ok "bob read" (Memfs.read fs ~subject:bob_sub "shared"));
  let () = ok "bob appends" (Memfs.append fs ~subject:bob_sub "shared" "!") in
  (* Write_append does not imply full write. *)
  match Memfs.write fs ~subject:bob_sub "shared" "clobbered" with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "append right allowed overwrite"

let test_mac_file_separation () =
  let kernel, fs, alice, bob = boot () in
  (* Files wide open at the ACL layer; classes do the separation. *)
  let open_acl owner =
    Acl.of_entries
      [ Acl.allow_all (Acl.Individual owner); Acl.allow Acl.Everyone [ Access_mode.Read; Access_mode.Write; Access_mode.List ] ]
  in
  let hi_sub = Subject.make alice (cls kernel "hi" [ "a" ]) in
  let lo_sub = Subject.make bob (cls kernel "lo" []) in
  let () = ok "hi file" (Memfs.create fs ~subject:hi_sub ~acl:(open_acl alice) "hi-file" "top") in
  let () = ok "lo file" (Memfs.create fs ~subject:lo_sub ~acl:(open_acl bob) "lo-file" "pub") in
  (* Read down: ok.  Read up: denied. *)
  Alcotest.(check string) "hi reads lo" "pub" (ok "down" (Memfs.read fs ~subject:hi_sub "lo-file"));
  (match Memfs.read fs ~subject:lo_sub "hi-file" with
  | Error (Service.Denied { denial = Decision.Mac_denied Mac.Read_up; _ }) -> ()
  | _ -> Alcotest.fail "low subject read high file");
  (* Write down: denied even for the high subject. *)
  match Memfs.write fs ~subject:hi_sub "lo-file" "leak" with
  | Error (Service.Denied { denial = Decision.Mac_denied _; _ }) -> ()
  | _ -> Alcotest.fail "write-down allowed"

let test_directories () =
  let kernel, fs, alice, bob = boot () in
  let subject = Subject.make alice (cls kernel "lo" []) in
  let () = ok "mkdir" (Memfs.mkdir fs ~subject "docs") in
  let () = ok "create in dir" (Memfs.create fs ~subject "docs/a" "1") in
  let () = ok "create b" (Memfs.create fs ~subject "docs/b" "2") in
  Alcotest.(check (list string)) "list" [ "a"; "b" ] (ok "list" (Memfs.list fs ~subject "docs"));
  (* Default directory ACL: others may list but not create. *)
  let bob_sub = Subject.make bob (cls kernel "lo" []) in
  let _ = ok "bob lists" (Memfs.list fs ~subject:bob_sub "docs") in
  (match Memfs.create fs ~subject:bob_sub "docs/intruder" "x" with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "bob created in alice's dir");
  (* Removing a non-empty dir fails; empty works. *)
  (match Memfs.remove fs ~subject "docs" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "removed non-empty dir");
  let () = ok "rm a" (Memfs.remove fs ~subject "docs/a") in
  let () = ok "rm b" (Memfs.remove fs ~subject "docs/b") in
  let () = ok "rm dir" (Memfs.remove fs ~subject "docs") in
  check "gone" false (Memfs.exists fs "docs")

let test_not_a_file () =
  let kernel, fs, alice, _ = boot () in
  let subject = Subject.make alice (cls kernel "lo" []) in
  let () = ok "mkdir" (Memfs.mkdir fs ~subject "d") in
  (match Memfs.read fs ~subject "d" with
  | Error (Service.Unresolved _) -> ()
  | _ -> Alcotest.fail "read a directory");
  match Memfs.read fs ~subject "ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read a ghost"

let suite =
  [
    Alcotest.test_case "create/read/write" `Quick test_create_read_write;
    Alcotest.test_case "owner isolation" `Quick test_owner_isolation;
    Alcotest.test_case "acl grant" `Quick test_acl_grant;
    Alcotest.test_case "MAC separation" `Quick test_mac_file_separation;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "not a file" `Quick test_not_a_file;
  ]

let test_service_interface () =
  let kernel, fs, alice, bob = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  (match Memfs.install_service fs ~subject:admin_sub with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install_service: %s" (Service.error_to_string e));
  let alice_sub = Subject.make alice (cls kernel "lo" []) in
  let bob_sub = Subject.make bob (cls kernel "lo" []) in
  let call subject name args =
    Kernel.call kernel ~subject ~caller:"test" (Path.child Memfs.service_mount name) args
  in
  (match call alice_sub "create" [ Value.str "via-svc"; Value.str "hello" ] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "create via service");
  (match call alice_sub "read" [ Value.str "via-svc" ] with
  | Ok (Value.Str "hello") -> ()
  | _ -> Alcotest.fail "read via service");
  (* Checks still apply to the *caller*, not the service. *)
  (match call bob_sub "read" [ Value.str "via-svc" ] with
  | Error (Service.Denied _) -> ()
  | _ -> Alcotest.fail "bob read alice's file via the service");
  (match call alice_sub "append" [ Value.str "via-svc"; Value.str "!" ] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "append via service");
  (match call alice_sub "remove" [ Value.str "via-svc" ] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "remove via service");
  check "gone" false (Memfs.exists fs "via-svc")

let test_service_respects_extension_ceiling () =
  let kernel, fs, alice, _ = boot () in
  let admin_sub = Kernel.admin_subject kernel in
  (match Memfs.install_service fs ~subject:admin_sub with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install_service: %s" (Service.error_to_string e));
  (* Alice at hi creates a hi file, then runs a lo-pinned extension
     that imports the fs service and tries to read it back: the
     ceiling must hold through the service call. *)
  let hi_sub = Subject.make alice (cls kernel "hi" []) in
  (match Memfs.create fs ~subject:hi_sub "secret" "classified" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "create: %s" (Service.error_to_string e));
  let read_path = Path.child Memfs.service_mount "read" in
  let ext =
    Extension.make ~name:"leaky" ~author:alice
      ~static_class:(cls kernel "lo" [])
      ~imports:[ read_path ]
      ()
  in
  let linked =
    match Linker.link kernel ~subject:hi_sub ext with
    | Ok linked -> linked
    | Error e -> Alcotest.failf "link: %s" (Format.asprintf "%a" Linker.pp_link_error e)
  in
  match Linker.Linked.call linked ~subject:hi_sub read_path [ Value.str "secret" ] with
  | Error (Service.Denied { denial = Decision.Mac_denied Mac.Read_up; _ }) -> ()
  | Ok _ -> Alcotest.fail "pinned extension read a high file through the fs service"
  | Error other -> Alcotest.failf "unexpected: %s" (Service.error_to_string other)

let suite =
  suite
  @ [
      Alcotest.test_case "service interface" `Quick test_service_interface;
      Alcotest.test_case "service respects ceiling" `Quick test_service_respects_extension_ceiling;
    ]
