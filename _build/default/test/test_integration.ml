(* End-to-end reproductions: the ThreadMurder containment argument
   (paper, section 1.2) and the new-file-system motivating example
   (section 1.1), both run on the full stack. *)

open Exsec_core
open Exsec_extsys
open Exsec_services

let check = Alcotest.(check bool)

let ok label = function
  | Ok value -> value
  | Error e -> Alcotest.failf "%s: %s" label (Service.error_to_string e)

(* {1 ThreadMurder} *)

(* The applet from McGraw & Felten: it enumerates every thread it can
   see and kills them all, including applets loaded after it.  Under
   the paper's model each thread is a protected object: the murderer
   only reaches threads its class can delete. *)

let boot_applet_world () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  List.iter
    (fun name -> Principal.Db.add_individual db (Principal.individual name))
    [ "admin"; "dept1"; "dept2"; "murderer" ];
  let hierarchy = Level.hierarchy [ "local"; "organization"; "others" ] in
  let universe = Category.universe [ "d1"; "d2" ] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let cls level cats =
    Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)
  in
  kernel, cls

let immortal () = Thread.Runnable

let murder kernel ~subject =
  (* Enumerate /threads and try to kill everything: exactly what the
     ThreadMurder applet does. *)
  let visible =
    match Resolver.list_dir (Kernel.resolver kernel) ~subject (Path.of_string "/threads") with
    | Ok names -> names
    | Error _ -> []
  in
  List.fold_left
    (fun killed name ->
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | None -> killed
      | Some id -> (
        match Kernel.kill kernel ~subject ~victim:id with
        | Ok () -> killed + 1
        | Error _ -> killed))
    0 visible

let test_thread_murder_contained () =
  let kernel, cls = boot_applet_world () in
  let d1 = Subject.make (Principal.individual "dept1") (cls "organization" [ "d1" ]) in
  let d2 = Subject.make (Principal.individual "dept2") (cls "organization" [ "d2" ]) in
  let murderer_principal = Principal.individual "murderer" in
  (* The murderer is an applet from the same organization, department
     1 — it shares a level and one category with its victims. *)
  let murderer = Subject.make murderer_principal (cls "organization" [ "d1" ]) in
  let v1 = ok "spawn v1" (Kernel.spawn kernel ~subject:d1 ~name:"victim-d1" ~body:immortal) in
  let v2 = ok "spawn v2" (Kernel.spawn kernel ~subject:d2 ~name:"victim-d2" ~body:immortal) in
  let own = ok "spawn own" (Kernel.spawn kernel ~subject:murderer ~name:"own" ~body:immortal) in
  (* A victim loaded after the murderer starts, like the applets the
     ThreadMurder incident killed retroactively. *)
  let v3 = ok "spawn v3" (Kernel.spawn kernel ~subject:d1 ~name:"late-victim" ~body:immortal) in
  let killed = murder kernel ~subject:murderer in
  (* Only its own thread dies: DAC protects same-category victims
     (owner-only ACLs), MAC the rest. *)
  Alcotest.(check int) "only its own thread" 1 killed;
  check "v1 alive" true (Thread.is_alive v1);
  check "v2 alive" true (Thread.is_alive v2);
  check "v3 alive" true (Thread.is_alive v3);
  check "own dead" true (Thread.state own = Thread.Killed)

let test_thread_murder_java_baseline () =
  (* The same attack under the Java-sandbox baseline: one flat
     sandbox, no per-thread protection — everything dies.  We model
     the sandbox by running all applets at one shared class with
     world-open thread ACLs. *)
  let kernel, cls = boot_applet_world () in
  let sandbox_class = cls "organization" [ "d1" ] in
  let world_open_thread_acl = Acl.of_entries [ Acl.allow_all Acl.Everyone ] in
  let spawn name principal =
    let subject = Subject.make (Principal.individual principal) sandbox_class in
    let thread = ok "spawn" (Kernel.spawn kernel ~subject ~name ~body:immortal) in
    Meta.set_acl_raw (Thread.meta thread) world_open_thread_acl;
    thread
  in
  let v1 = spawn "victim1" "dept1" in
  let v2 = spawn "victim2" "dept2" in
  let murderer = Subject.make (Principal.individual "murderer") sandbox_class in
  let own = ok "own" (Kernel.spawn kernel ~subject:murderer ~name:"own" ~body:immortal) in
  let v3 = spawn "late" "dept1" in
  let killed = murder kernel ~subject:murderer in
  Alcotest.(check int) "sandbox: everything dies" 4 killed;
  check "v1 dead" false (Thread.is_alive v1);
  check "v2 dead" false (Thread.is_alive v2);
  check "v3 dead" false (Thread.is_alive v3);
  check "own dead" false (Thread.is_alive own)

(* {1 The new-file-system extension} *)

let test_fs_extension_end_to_end () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let dev = Principal.individual "dev" in
  let user = Principal.individual "user" in
  List.iter (Principal.Db.add_individual db) [ admin; dev; user ];
  let hierarchy = Level.hierarchy [ "local"; "outside" ] in
  let universe = Category.universe [] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let admin_sub = Kernel.admin_subject kernel in
  let local =
    Security_class.make (Level.of_name_exn hierarchy "local") (Category.empty universe)
  in
  let dev_sub = Subject.make dev local in
  let user_sub = Subject.make user local in
  (* Base system services: mbuf and the vfs switch. *)
  let pool = Mbuf.create () in
  let () = ok "mbuf" (Mbuf.install pool kernel ~subject:admin_sub) in
  let vfs = ok "vfs" (Vfs.install kernel ~subject:admin_sub) in
  let () = ok "grant" (Vfs.grant_extend vfs ~subject:admin_sub (Acl.Individual dev)) in
  (* The extension implements a file system on top of mbuf buffers:
     one buffer per file, an assoc table for names.  It both CALLS
     existing services (mbuf) and EXTENDS an existing interface (the
     vfs backend events) — the two interaction modes of section 1.1. *)
  let table : (string * int) list ref = ref [] in
  let mbuf_path name = Path.of_string ("/svc/mbuf/" ^ name) in
  let backend_write ctx args =
    match args with
    | [ Value.Str _; Value.Str file; Value.Str data ] -> (
      let handle_result =
        match List.assoc_opt file !table with
        | Some handle ->
          (match ctx.Service.call (mbuf_path "reset") [ Value.int handle ] with
          | Ok _ -> Ok handle
          | Error e -> Error e)
        | None -> (
          match ctx.Service.call (mbuf_path "alloc") [] with
          | Ok (Value.Int handle) ->
            table := (file, handle) :: !table;
            Ok handle
          | Ok _ -> Error (Service.Ext_failure "alloc: bad result")
          | Error e -> Error e)
      in
      match handle_result with
      | Error e -> Error e
      | Ok handle -> (
        match
          ctx.Service.call (mbuf_path "write")
            [ Value.int handle; Value.blob (Bytes.of_string data) ]
        with
        | Ok _ -> Ok Value.unit
        | Error e -> Error e))
    | _ -> Error (Service.Bad_argument "backend_write")
  in
  let backend_read ctx args =
    match args with
    | [ Value.Str _; Value.Str file ] -> (
      match List.assoc_opt file !table with
      | None -> Error (Service.Ext_failure (file ^ ": not found"))
      | Some handle -> (
        match ctx.Service.call (mbuf_path "read") [ Value.int handle ] with
        | Ok (Value.Blob b) -> Ok (Value.str (Bytes.to_string b))
        | Ok _ -> Error (Service.Ext_failure "read: bad result")
        | Error e -> Error e))
    | _ -> Error (Service.Bad_argument "backend_read")
  in
  let ext =
    Extension.make ~name:"bufferfs" ~author:dev
      ~imports:
        [ mbuf_path "alloc"; mbuf_path "free"; mbuf_path "write"; mbuf_path "read"; mbuf_path "reset" ]
      ~extends:
        [
          Extension.extends ~guard:(Vfs.guard_fstype "bufferfs") Vfs.backend_read_event backend_read;
          Extension.extends ~guard:(Vfs.guard_fstype "bufferfs") Vfs.backend_write_event backend_write;
        ]
      ()
  in
  (match Linker.link kernel ~subject:dev_sub ext with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "link: %s" (Format.asprintf "%a" Linker.pp_link_error e));
  let () = ok "mount" (Vfs.mount_fs vfs ~subject:admin_sub ~fstype:"bufferfs" ~prefix:"/buf/") in
  (* The user exercises the new file system through the EXISTING
     general interface, never naming the extension. *)
  let () = ok "write" (Vfs.write vfs ~subject:user_sub "/buf/greeting" "hello extension") in
  Alcotest.(check string) "read" "hello extension"
    (ok "read" (Vfs.read vfs ~subject:user_sub "/buf/greeting"));
  let () = ok "overwrite" (Vfs.write vfs ~subject:user_sub "/buf/greeting" "v2") in
  Alcotest.(check string) "read v2" "v2" (ok "read2" (Vfs.read vfs ~subject:user_sub "/buf/greeting"));
  check "mbuf used" true (Mbuf.allocated_total pool >= 1)

let test_audit_covers_everything () =
  (* Every kernel operation leaves an audit trail — the central
     facility sees it all. *)
  let kernel, cls = boot_applet_world () in
  let monitor = Kernel.monitor kernel in
  let before = Audit.total (Reference_monitor.audit monitor) in
  let d1 = Subject.make (Principal.individual "dept1") (cls "organization" [ "d1" ]) in
  let _ = Kernel.spawn kernel ~subject:d1 ~name:"t" ~body:immortal in
  let _ = Kernel.call kernel ~subject:d1 ~caller:"t" (Path.of_string "/svc/none") [] in
  let after = Audit.total (Reference_monitor.audit monitor) in
  check "operations audited" true (after > before)

let suite =
  [
    Alcotest.test_case "thread murder contained" `Quick test_thread_murder_contained;
    Alcotest.test_case "thread murder under java" `Quick test_thread_murder_java_baseline;
    Alcotest.test_case "fs extension end-to-end" `Quick test_fs_extension_end_to_end;
    Alcotest.test_case "audit coverage" `Quick test_audit_covers_everything;
  ]

let test_extension_stacking () =
  (* Extension B builds on a procedure PROVIDED by extension A — the
     composition story of section 1.1, with every hop checked. *)
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let vendor = Principal.individual "vendor" in
  let dev = Principal.individual "dev" in
  let eve = Principal.individual "eve" in
  List.iter (Principal.Db.add_individual db) [ admin; vendor; dev; eve ];
  let hierarchy = Level.hierarchy [ "local"; "outside" ] in
  let universe = Category.universe [] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let local = Security_class.make (Level.top hierarchy) (Category.empty universe) in
  let vendor_sub = Subject.make vendor local in
  let dev_sub = Subject.make dev local in
  (* A provides a rot13 primitive. *)
  let rot13 text =
    String.map
      (fun c ->
        let rot base = Char.chr ((Char.code c - Char.code base + 13) mod 26 + Char.code base) in
        if c >= 'a' && c <= 'z' then rot 'a'
        else if c >= 'A' && c <= 'Z' then rot 'A'
        else c)
      text
  in
  let ext_a =
    Extension.make ~name:"cipher" ~author:vendor
      ~provides:
        [
          Extension.provided "rot13" 1 (fun _ctx args ->
              match args with
              | [ Value.Str s ] -> Ok (Value.str (rot13 s))
              | _ -> Error (Service.Bad_argument "rot13"));
        ]
      ()
  in
  (match Linker.link kernel ~subject:vendor_sub ext_a with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "link A: %s" (Format.asprintf "%a" Linker.pp_link_error e));
  let rot13_path = Path.of_string "/ext/cipher/rot13" in
  (* B imports A's provided procedure and provides a doubler on top. *)
  let ext_b =
    Extension.make ~name:"doubler" ~author:dev ~imports:[ rot13_path ]
      ~provides:
        [
          Extension.provided "rot26" 1 (fun ctx args ->
              match ctx.Service.call rot13_path args with
              | Ok once -> ctx.Service.call rot13_path [ once ]
              | Error e -> Error e);
        ]
      ()
  in
  (match Linker.link kernel ~subject:dev_sub ext_b with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "link B: %s" (Format.asprintf "%a" Linker.pp_link_error e));
  (* rot13 twice is the identity; the call chain crosses the kernel
     twice under dev's authority. *)
  (match
     Kernel.call kernel ~subject:dev_sub ~caller:"test" (Path.of_string "/ext/doubler/rot26")
       [ Value.str "Attack at dawn" ]
   with
  | Ok (Value.Str "Attack at dawn") -> ()
  | Ok other -> Alcotest.failf "rot26 returned %s" (Format.asprintf "%a" Value.pp other)
  | Error e -> Alcotest.failf "rot26: %s" (Service.error_to_string e));
  (* The vendor withdraws world access to rot13: B's users feel the
     revocation on the next call (per-call recheck inside handler
     ctx.call, since provided procs are invoked checked). *)
  (match
     Resolver.set_acl (Kernel.resolver kernel) ~subject:vendor_sub rot13_path
       (Acl.owner_default vendor)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "revoke: %s" (Format.asprintf "%a" Resolver.pp_denial e));
  match
    Kernel.call kernel ~subject:dev_sub ~caller:"test" (Path.of_string "/ext/doubler/rot26")
      [ Value.str "hi" ]
  with
  | Error (Service.Denied { mode = Access_mode.Execute; _ }) -> ()
  | Ok _ -> Alcotest.fail "call after revocation"
  | Error other -> Alcotest.failf "unexpected: %s" (Service.error_to_string other)

let suite =
  suite @ [ Alcotest.test_case "extension stacking" `Quick test_extension_stacking ]
