open Exsec_core
open Exsec_extsys

let check = Alcotest.(check bool)

let hierarchy = Level.hierarchy [ "local"; "org"; "outside" ]
let universe = Category.universe [ "d1"; "d2" ]

let cls level cats =
  Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)

let handler ?guard owner klass tag =
  {
    Dispatcher.owner;
    klass;
    guard;
    impl = (fun _ctx _args -> Ok (Value.str tag));
  }

let event = Path.of_string "/svc/thing"

let run_handler = function
  | Some h -> (
    let fake_ctx =
      {
        Service.subject = Subject.make (Principal.individual "x") (cls "local" []);
        caller = "test";
        call = (fun _ _ -> Error (Service.Ext_failure "no"));
        raise_event = (fun _ _ -> Error (Service.Ext_failure "no"));
      }
    in
    match h.Dispatcher.impl fake_ctx [] with
    | Ok (Value.Str tag) -> Some tag
    | _ -> None)
  | None -> None

let test_selection_by_class () =
  let d = Dispatcher.create () in
  Dispatcher.register d ~event (handler "ext-local" (cls "local" []) "local");
  Dispatcher.register d ~event (handler "ext-org" (cls "org" []) "org");
  Dispatcher.register d ~event (handler "ext-out" (cls "outside" []) "out");
  (* A local caller dominates all three; the most specific (its own
     level) wins. *)
  Alcotest.(check (option string)) "local caller" (Some "local")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "local" []) ~args:[]));
  Alcotest.(check (option string)) "org caller" (Some "org")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "org" []) ~args:[]));
  Alcotest.(check (option string)) "outside caller" (Some "out")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "outside" []) ~args:[]))

let test_no_eligible_handler () =
  let d = Dispatcher.create () in
  Dispatcher.register d ~event (handler "ext-local" (cls "local" []) "local");
  (* An outside caller dominates nothing registered. *)
  check "none" true (Dispatcher.select d ~event ~caller_class:(cls "outside" []) ~args:[] = None);
  check "unknown event" true
    (Dispatcher.select d ~event:(Path.of_string "/nope") ~caller_class:(cls "local" []) ~args:[] = None)

let test_guard_filters () =
  let d = Dispatcher.create () in
  let is_one args = match args with [ Value.Int 1 ] -> true | _ -> false in
  Dispatcher.register d ~event (handler ~guard:is_one "guarded" (cls "org" []) "one");
  Dispatcher.register d ~event (handler "fallback" (cls "org" []) "any");
  Alcotest.(check (option string)) "guard match" (Some "one")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "org" []) ~args:[ Value.int 1 ]));
  Alcotest.(check (option string)) "guard miss" (Some "any")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "org" []) ~args:[ Value.int 2 ]))

let test_registration_order_breaks_ties () =
  let d = Dispatcher.create () in
  Dispatcher.register d ~event (handler "first" (cls "org" []) "first");
  Dispatcher.register d ~event (handler "second" (cls "org" []) "second");
  Alcotest.(check (option string)) "first registered wins" (Some "first")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "local" []) ~args:[]))

let test_select_all_ordering () =
  let d = Dispatcher.create () in
  Dispatcher.register d ~event (handler "out" (cls "outside" []) "out");
  Dispatcher.register d ~event (handler "local" (cls "local" [ "d1" ]) "local");
  Dispatcher.register d ~event (handler "org" (cls "org" [ "d1" ]) "org");
  let all =
    Dispatcher.select_all d ~event ~caller_class:(cls "local" [ "d1"; "d2" ]) ~args:[]
  in
  Alcotest.(check (list string)) "most specific first" [ "local"; "org"; "out" ]
    (List.map (fun h -> h.Dispatcher.owner) all)

let test_unregister_owner () =
  let d = Dispatcher.create () in
  Dispatcher.register d ~event (handler "doomed" (cls "org" []) "a");
  Dispatcher.register d ~event (handler "stays" (cls "org" []) "b");
  Dispatcher.register d ~event:(Path.of_string "/svc/other") (handler "doomed" (cls "org" []) "c");
  Alcotest.(check int) "three registered" 3 (Dispatcher.handler_count d);
  Dispatcher.unregister_owner d "doomed";
  Alcotest.(check int) "one left" 1 (Dispatcher.handler_count d);
  Alcotest.(check (list string)) "events pruned" [ "/svc/thing" ]
    (List.map Path.to_string (Dispatcher.events d))

let test_incomparable_classes () =
  let d = Dispatcher.create () in
  Dispatcher.register d ~event (handler "d1" (cls "org" [ "d1" ]) "d1");
  Dispatcher.register d ~event (handler "d2" (cls "org" [ "d2" ]) "d2");
  (* A d2-only caller cannot reach the d1 handler. *)
  Alcotest.(check (option string)) "d2 caller" (Some "d2")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "org" [ "d2" ]) ~args:[]));
  (* A caller with both sees both; registration order breaks the
     incomparable tie. *)
  Alcotest.(check (option string)) "merged caller" (Some "d1")
    (run_handler (Dispatcher.select d ~event ~caller_class:(cls "org" [ "d1"; "d2" ]) ~args:[]))

let suite =
  [
    Alcotest.test_case "selection by class" `Quick test_selection_by_class;
    Alcotest.test_case "no eligible handler" `Quick test_no_eligible_handler;
    Alcotest.test_case "guards" `Quick test_guard_filters;
    Alcotest.test_case "tie by registration order" `Quick test_registration_order_breaks_ties;
    Alcotest.test_case "select_all ordering" `Quick test_select_all_ordering;
    Alcotest.test_case "unregister owner" `Quick test_unregister_owner;
    Alcotest.test_case "incomparable classes" `Quick test_incomparable_classes;
  ]

(* Property: select returns an *eligible* handler (caller dominates
   its class, guard passes) that is *maximal* among eligible handlers
   (no eligible handler strictly dominates it). *)
let prop_select_eligible_and_maximal =
  let hierarchy = Level.hierarchy [ "l3"; "l2"; "l1"; "l0" ] in
  let universe = Category.universe [ "x"; "y" ] in
  let mk_class (level_ix, x, y) =
    let level = Level.of_name_exn hierarchy (Printf.sprintf "l%d" level_ix) in
    let cats =
      List.concat [ (if x then [ "x" ] else []); (if y then [ "y" ] else []) ]
    in
    Security_class.make level (Category.of_names universe cats)
  in
  let arb =
    QCheck.make
      QCheck.Gen.(
        let klass = triple (int_range 0 3) bool bool in
        pair klass (list_size (int_range 0 8) klass))
  in
  QCheck.Test.make ~name:"select is eligible and maximal" ~count:300 arb
    (fun (caller_spec, handler_specs) ->
      let d = Dispatcher.create () in
      let event = Path.of_string "/e" in
      List.iteri
        (fun i spec ->
          Dispatcher.register d ~event (handler (Printf.sprintf "h%d" i) (mk_class spec) "t"))
        handler_specs;
      let caller_class = mk_class caller_spec in
      let eligible =
        List.filter
          (fun h -> Security_class.dominates caller_class h.Dispatcher.klass)
          (Dispatcher.handlers d ~event)
      in
      match Dispatcher.select d ~event ~caller_class ~args:[] with
      | None -> eligible = []
      | Some best ->
        List.exists (fun h -> h == best) eligible
        && List.for_all
             (fun h ->
               not
                 (Security_class.dominates h.Dispatcher.klass best.Dispatcher.klass
                 && not (Security_class.equal h.Dispatcher.klass best.Dispatcher.klass)))
             eligible)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_select_eligible_and_maximal ]
