open Exsec_baselines

let check = Alcotest.(check bool)

let models : (module Model.MODEL) list =
  [
    (module Unix_perms);
    (module Afs_acl);
    (module Nt_acl);
    (module Java_sandbox);
    (module Spin_domains);
    (module Vino_priv);
    (module Ours);
  ]

let outcome model id =
  match Suite.find id with
  | None -> Alcotest.failf "unknown requirement %s" id
  | Some requirement -> Model.evaluate model requirement

let is_enforced = function
  | Model.Enforced -> true
  | Model.Inexpressible | Model.Misenforced _ -> false

let test_ours_enforces_everything () =
  List.iter
    (fun (r : World.requirement) ->
      match Model.evaluate (module Ours) r with
      | Model.Enforced -> ()
      | other ->
        Alcotest.failf "%s: %s" r.World.r_id (Format.asprintf "%a" Model.pp_outcome other))
    Suite.all

let test_no_baseline_enforces_everything () =
  List.iter
    (fun (module M : Model.MODEL) ->
      if not (String.equal M.name "this-paper") then begin
        let all_good =
          List.for_all (fun r -> is_enforced (Model.evaluate (module M) r)) Suite.all
        in
        check (M.name ^ " incomplete") false all_good
      end)
    models

(* The paper's specific claims, pinned as expectations. *)

let test_unix_claims () =
  check "R1 single-owner service" true (is_enforced (outcome (module Unix_perms) "R1"));
  (* No extend bit. *)
  (match outcome (module Unix_perms) "R2" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "unix should mis-enforce R2");
  (* No negative entries. *)
  (match outcome (module Unix_perms) "R3" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "unix should mis-enforce R3");
  (* One group slot. *)
  (match outcome (module Unix_perms) "R4" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "unix should mis-enforce R4");
  (* Per-file granularity is genuinely fine in Unix. *)
  check "R5" true (is_enforced (outcome (module Unix_perms) "R5"));
  (* No MAC. *)
  check "R6 inexpressible" true (outcome (module Unix_perms) "R6" = Model.Inexpressible);
  match outcome (module Unix_perms) "R9" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "unix should mis-enforce R9"

let test_afs_claims () =
  (* Negative rights work... *)
  check "R3" true (is_enforced (outcome (module Afs_acl) "R3"));
  check "R4" true (is_enforced (outcome (module Afs_acl) "R4"));
  (* ...but only per directory: the paper's exact complaint. *)
  (match outcome (module Afs_acl) "R5" with
  | Model.Misenforced { failed = 1; total = 4 } -> ()
  | other -> Alcotest.failf "afs R5: %s" (Format.asprintf "%a" Model.pp_outcome other));
  (* Services are beyond the mechanism. *)
  check "R1 inexpressible" true (outcome (module Afs_acl) "R1" = Model.Inexpressible)

let test_nt_claims () =
  check "R3" true (is_enforced (outcome (module Nt_acl) "R3"));
  check "R5 per-file" true (is_enforced (outcome (module Nt_acl) "R5"));
  check "R1 inexpressible (no extension control)" true
    (outcome (module Nt_acl) "R1" = Model.Inexpressible);
  check "R6 inexpressible (no MAC)" true (outcome (module Nt_acl) "R6" = Model.Inexpressible);
  (* The append right is real, so NT comes closest on R12 — but the
     clearance-based read still fails. *)
  match outcome (module Nt_acl) "R12" with
  | Model.Misenforced { failed = 1; total = 6 } -> ()
  | other -> Alcotest.failf "nt R12: %s" (Format.asprintf "%a" Model.pp_outcome other)

let test_java_claims () =
  (* Binary trust cannot distinguish principals... *)
  (match outcome (module Java_sandbox) "R1" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "java should mis-enforce R1");
  (* ...nor intermediate trust levels... *)
  (match outcome (module Java_sandbox) "R6" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "java should mis-enforce R6");
  (* ...and judges code, not principals (an untrusted user running
     trusted-origin code gets everything). *)
  match outcome (module Java_sandbox) "R10" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "java should mis-enforce R10"

let test_spin_claims () =
  (* Domains do solve call restriction. *)
  check "R1" true (is_enforced (outcome (module Spin_domains) "R1"));
  (* But linking grants call and extend together. *)
  (match outcome (module Spin_domains) "R2" with
  | Model.Misenforced { failed = 2; total = 6 } -> ()
  | other -> Alcotest.failf "spin R2: %s" (Format.asprintf "%a" Model.pp_outcome other));
  (* Files and flow are out of scope. *)
  check "R3" true (outcome (module Spin_domains) "R3" = Model.Inexpressible);
  check "R9" true (outcome (module Spin_domains) "R9" = Model.Inexpressible)

let test_vino_claims () =
  (* One privilege boundary works. *)
  check "R1" true (is_enforced (outcome (module Vino_priv) "R1"));
  (* Distinct call/extend sets don't. *)
  check "R2" true (outcome (module Vino_priv) "R2" = Model.Inexpressible);
  (* Multi-level policies don't. *)
  check "R6" true (outcome (module Vino_priv) "R6" = Model.Inexpressible);
  match outcome (module Vino_priv) "R12" with
  | Model.Misenforced _ -> ()
  | _ -> Alcotest.fail "vino should mis-enforce R12"

let test_three_prong_fault_injection () =
  (* No faults: no breaches. *)
  Alcotest.(check (float 0.0)) "intact" 0.0 (Java_sandbox.breach_fraction ~faulty:[]);
  (* Any single faulty prong admits some attacks — the paper's
     "a design or implementation error in any one of the three
     prongs can break the entire security system". *)
  List.iter
    (fun prong ->
      check "single fault breaches" true (Java_sandbox.breach_fraction ~faulty:[ prong ] > 0.0))
    Java_sandbox.prongs;
  (* All prongs faulty: everything breached. *)
  Alcotest.(check (float 0.0)) "total" 1.0
    (Java_sandbox.breach_fraction ~faulty:Java_sandbox.prongs);
  (* Fractions over single faults sum to 1: each attack is guarded by
     exactly one prong. *)
  let sum =
    List.fold_left
      (fun acc prong -> acc +. Java_sandbox.breach_fraction ~faulty:[ prong ])
      0.0 Java_sandbox.prongs
  in
  Alcotest.(check (float 0.0001)) "partition" 1.0 sum

let test_evaluate_verbose_reports_cases () =
  match Suite.find "R3" with
  | None -> Alcotest.fail "no R3"
  | Some r ->
    let outcome, failures = Model.evaluate_verbose (module Unix_perms) r in
    (match outcome with
    | Model.Misenforced { failed; _ } ->
      Alcotest.(check int) "failure list matches count" failed (List.length failures)
    | _ -> Alcotest.fail "expected misenforcement");
    List.iter
      (fun { Model.case; got } -> check "reported case really differs" true (got <> case.World.c_expect))
      failures

let suite =
  [
    Alcotest.test_case "ours enforces everything" `Quick test_ours_enforces_everything;
    Alcotest.test_case "no baseline enforces everything" `Quick test_no_baseline_enforces_everything;
    Alcotest.test_case "unix claims" `Quick test_unix_claims;
    Alcotest.test_case "afs claims" `Quick test_afs_claims;
    Alcotest.test_case "nt claims" `Quick test_nt_claims;
    Alcotest.test_case "java claims" `Quick test_java_claims;
    Alcotest.test_case "spin claims" `Quick test_spin_claims;
    Alcotest.test_case "vino claims" `Quick test_vino_claims;
    Alcotest.test_case "three-prong faults" `Quick test_three_prong_fault_injection;
    Alcotest.test_case "verbose evaluation" `Quick test_evaluate_verbose_reports_cases;
  ]
