open Exsec_extsys

let check = Alcotest.(check bool)

let test_accessors () =
  check "int" true (Value.to_int (Value.int 7) = Some 7);
  check "bool" true (Value.to_bool (Value.bool true) = Some true);
  check "str" true (Value.to_str (Value.str "x") = Some "x");
  check "blob" true (Value.to_blob (Value.blob (Bytes.of_string "b")) = Some (Bytes.of_string "b"));
  check "pair" true (Value.to_pair (Value.pair Value.unit (Value.int 1)) <> None);
  check "list" true (Value.to_list (Value.list [ Value.int 1 ]) <> None);
  check "mismatch" true (Value.to_int (Value.str "7") = None)

let test_exn_accessors () =
  Alcotest.(check int) "int" 7 (Value.to_int_exn (Value.int 7));
  match Value.to_int_exn (Value.str "oops") with
  | _ -> Alcotest.fail "expected Type_error"
  | exception Value.Type_error message ->
    Alcotest.(check string) "message" "expected int, got str" message

let test_equal () =
  check "deep equal" true
    (Value.equal
       (Value.list [ Value.pair (Value.int 1) (Value.str "a") ])
       (Value.list [ Value.pair (Value.int 1) (Value.str "a") ]));
  check "not equal" false (Value.equal (Value.int 1) (Value.int 2));
  check "cross constructor" false (Value.equal (Value.int 1) (Value.str "1"))

let test_pp () =
  Alcotest.(check string) "pp list" {|[1; "a"]|}
    (Format.asprintf "%a" Value.pp (Value.list [ Value.int 1; Value.str "a" ]));
  Alcotest.(check string) "pp unit" "()" (Format.asprintf "%a" Value.pp Value.unit)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "exn accessors" `Quick test_exn_accessors;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
