(* The figure experiments F1-F5: parameter sweeps printed as series
   (see DESIGN.md and EXPERIMENTS.md). *)

open Exsec_core
open Exsec_extsys
open Exsec_workload

let header title = Format.printf "@.=== %s ===@." title

(* {1 F1: per-check cost of each policy layer vs ACL length} *)

let f1 () =
  header "F1  Reference-monitor check cost vs ACL length";
  let rng = Prng.create ~seed:1 in
  let db, inds, _ = Gen.principal_db rng ~individuals:64 ~groups:8 ~density:0.2 in
  let hierarchy, universe = Gen.lattice ~levels:3 ~categories:4 in
  let subject_principal = List.hd inds in
  let subject =
    Subject.make subject_principal
      (Security_class.make (Level.top hierarchy) (Category.full universe))
  in
  let policies =
    [
      "none", Policy.unchecked;
      "dac-only", Policy.dac_only;
      "mac-only", Policy.mac_only;
      "dac+mac", Policy.default;
    ]
  in
  Format.printf "%-10s" "acl-len";
  List.iter (fun (name, _) -> Format.printf " %-12s" name) policies;
  Format.printf "@.";
  List.iter
    (fun len ->
      Format.printf "%-10d" len;
      let acl =
        Gen.acl_with_subject_at rng ~subject:subject_principal ~mode:Access_mode.Read
          ~filler_individuals:inds ~position:(len - 1) ~length:len
      in
      let meta =
        Meta.make ~owner:subject_principal ~acl
          (Security_class.bottom hierarchy universe)
      in
      List.iter
        (fun (_, policy) ->
          let monitor = Reference_monitor.create ~policy db in
          let ns =
            Timing.ns_per_op (fun () ->
                ignore (Reference_monitor.decide monitor ~subject ~meta ~mode:Access_mode.Read))
          in
          Format.printf " %a  " Timing.pp_ns ns)
        policies;
      Format.printf "@.")
    [ 1; 4; 16; 64 ];
  Format.printf
    "expected shape: MAC cost flat; DAC grows with ACL length; layers compose additively@."

(* {1 F2: name resolution cost vs depth, checked vs raw} *)

let f2 () =
  header "F2  Name-space resolution cost vs path depth";
  let db = Principal.Db.create () in
  let owner = Principal.individual "owner" in
  Principal.Db.add_individual db owner;
  let hierarchy, universe = Gen.lattice ~levels:2 ~categories:1 in
  let bottom = Security_class.bottom hierarchy universe in
  let subject = Subject.make owner bottom in
  Format.printf "%-8s %-14s %-14s %-8s@." "depth" "checked" "raw-lookup" "ratio";
  List.iter
    (fun depth ->
      let monitor = Reference_monitor.create db in
      let root_meta =
        Meta.make ~owner
          ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Read ] ])
          bottom
      in
      let ns = Namespace.create ~root_meta () in
      let resolver = Resolver.create monitor ns in
      let leaf = Gen.chain ns ~owner ~klass:bottom ~depth ~leaf:0 in
      let checked =
        Timing.ns_per_op (fun () ->
            ignore (Resolver.resolve resolver ~subject ~mode:Access_mode.Read leaf))
      in
      let raw = Timing.ns_per_op (fun () -> ignore (Namespace.find ns leaf)) in
      Format.printf "%-8d %a %a %8.1fx@." depth Timing.pp_ns checked Timing.pp_ns raw
        (checked /. raw))
    [ 1; 2; 4; 8; 16; 32 ];
  Format.printf
    "expected shape: both linear in depth; checking costs a constant factor (one@.";
  Format.printf "monitor decision per traversed node), the price of section 2.3's design@."

(* {1 F3: class-indexed handler selection vs number of variants} *)

let f3 () =
  header "F3  Dispatcher handler selection vs registered variants";
  Format.printf "%-10s %-14s %-14s@." "handlers" "select" "select_all";
  let event = Path.of_string "/svc/e" in
  List.iter
    (fun n ->
      let hierarchy, universe = Gen.lattice ~levels:(n + 1) ~categories:0 in
      let level_names = Array.of_list (Level.names hierarchy) in
      let dispatcher = Dispatcher.create () in
      for i = 0 to n - 1 do
        Dispatcher.register dispatcher ~event
          {
            Dispatcher.owner = Printf.sprintf "ext%d" i;
            klass =
              Security_class.make
                (Level.of_name_exn hierarchy level_names.(i + 1))
                (Category.empty universe);
            guard = None;
            impl = (fun _ _ -> Ok Value.unit);
          }
      done;
      let caller_class = Security_class.top hierarchy universe in
      let select =
        Timing.ns_per_op (fun () ->
            ignore (Dispatcher.select dispatcher ~event ~caller_class ~args:[]))
      in
      let select_all =
        Timing.ns_per_op (fun () ->
            ignore (Dispatcher.select_all dispatcher ~event ~caller_class ~args:[]))
      in
      Format.printf "%-10d %a %a@." n Timing.pp_ns select Timing.pp_ns select_all)
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  Format.printf
    "expected shape: select is linear (one maximal-candidate pass); select_all@.";
  Format.printf
    "is quadratic (dominance-layer ranking for broadcast order); both are@.";
  Format.printf "sub-microsecond at realistic handler counts@."

(* {1 F4: information flows blocked, MAC vs DAC-only} *)

let f4 () =
  header "F4  Illegal information flows admitted (DAC-only vs DAC+MAC)";
  Format.printf "%-12s %-10s %-12s %-16s %-16s@." "categories" "attempts" "illegal"
    "admitted (dac)" "admitted (mac)";
  let rng = Prng.create ~seed:7 in
  let db = Principal.Db.create () in
  let carol = Principal.individual "carol" in
  Principal.Db.add_individual db carol;
  let attempts = 2_000 in
  List.iter
    (fun categories ->
      let hierarchy, universe = Gen.lattice ~levels:3 ~categories in
      let open_acl =
        Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.Read; Access_mode.Write_append ] ]
      in
      let dac_monitor = Reference_monitor.create ~policy:Policy.dac_only db in
      let mac_monitor = Reference_monitor.create ~policy:Policy.default db in
      let illegal = ref 0 in
      let admitted_dac = ref 0 in
      let admitted_mac = ref 0 in
      for _ = 1 to attempts do
        let subject = Subject.make carol (Gen.security_class rng hierarchy universe) in
        let source = Meta.make ~owner:carol ~acl:open_acl (Gen.security_class rng hierarchy universe) in
        let sink = Meta.make ~owner:carol ~acl:open_acl (Gen.security_class rng hierarchy universe) in
        let is_illegal = not (Security_class.dominates sink.Meta.klass source.Meta.klass) in
        if is_illegal then incr illegal;
        let flows monitor =
          Decision.is_granted
            (Reference_monitor.decide monitor ~subject ~meta:source ~mode:Access_mode.Read)
          && Decision.is_granted
               (Reference_monitor.decide monitor ~subject ~meta:sink
                  ~mode:Access_mode.Write_append)
        in
        if is_illegal && flows dac_monitor then incr admitted_dac;
        if is_illegal && flows mac_monitor then incr admitted_mac
      done;
      Format.printf "%-12d %-10d %-12d %-16d %-16d@." categories attempts !illegal
        !admitted_dac !admitted_mac)
    [ 2; 4; 8; 16 ];
  Format.printf
    "expected shape: DAC alone admits every illegal flow it is asked to (the ACLs@.";
  Format.printf
    "are open); the lattice admits none — Denning's soundness, paper section 2.2@."

(* {1 F5: link-time vs per-call enforcement} *)

let f5 () =
  header "F5  Link-time vs per-call import checks (SPIN model vs revocation)";
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  let alice = Principal.individual "alice" in
  Principal.Db.add_individual db admin;
  Principal.Db.add_individual db alice;
  let hierarchy = Level.hierarchy [ "hi"; "lo" ] in
  let universe = Category.universe [] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let admin_sub = Kernel.admin_subject kernel in
  let ping = Path.of_string "/svc/ping" in
  (match
     Kernel.install_proc kernel ~subject:admin_sub ping
       ~meta:(Kernel.default_meta kernel ~owner:admin ())
       (Service.proc "ping" 0 (Service.const Value.unit))
   with
  | Ok () -> ()
  | Error e -> failwith (Service.error_to_string e));
  let alice_sub = Subject.make alice (Security_class.bottom hierarchy universe) in
  let ext = Extension.make ~name:"caller" ~author:alice ~imports:[ ping ] () in
  let linked =
    match Linker.link kernel ~subject:alice_sub ext with
    | Ok linked -> linked
    | Error e -> failwith (Format.asprintf "%a" Linker.pp_link_error e)
  in
  let monitor = Kernel.monitor kernel in
  let measure () =
    Timing.ns_per_op (fun () ->
        ignore (Linker.Linked.call linked ~subject:alice_sub ping []))
  in
  Reference_monitor.set_policy monitor Policy.default;
  let linktime = measure () in
  Reference_monitor.set_policy monitor (Policy.with_recheck Policy.default);
  let percall = measure () in
  Format.printf "%-26s %-14s@." "mode" "cost/call";
  Format.printf "%-26s %a@." "link-time only (SPIN)" Timing.pp_ns linktime;
  Format.printf "%-26s %a@." "re-check every call" Timing.pp_ns percall;
  Format.printf "overhead factor: %.1fx@." (percall /. linktime);
  (* Revocation behaviour: withdraw Everyone's execute right. *)
  (match
     Resolver.set_acl (Kernel.resolver kernel) ~subject:admin_sub ping
       (Acl.of_entries
          [ Acl.allow_all (Acl.Individual admin); Acl.allow Acl.Everyone [ Access_mode.List ] ])
   with
  | Ok () -> ()
  | Error e -> failwith (Format.asprintf "%a" Resolver.pp_denial e));
  let attempt label =
    match Linker.Linked.call linked ~subject:alice_sub ping [] with
    | Ok _ -> Format.printf "after revocation, %-22s call ADMITTED@." label
    | Error _ -> Format.printf "after revocation, %-22s call DENIED@." label
  in
  Reference_monitor.set_policy monitor Policy.default;
  attempt "link-time mode:";
  Reference_monitor.set_policy monitor (Policy.with_recheck Policy.default);
  attempt "re-check mode:";
  Format.printf
    "expected shape: link-time checking is several times cheaper per call but@.";
  Format.printf "cannot revoke; per-call checking pays for immediate revocation@."

(* {1 F6: name-space scale} *)

let f6 () =
  header "F6  Universal name space at scale: lookup and insert vs population";
  let db = Principal.Db.create () in
  let owner = Principal.individual "owner" in
  Principal.Db.add_individual db owner;
  let hierarchy, universe = Gen.lattice ~levels:2 ~categories:1 in
  let bottom = Security_class.bottom hierarchy universe in
  let subject = Subject.make owner bottom in
  Format.printf "%-10s %-10s %-14s %-14s@." "nodes" "depth" "checked-lookup" "insert";
  List.iter
    (fun (depth, fanout) ->
      let monitor = Reference_monitor.create db in
      let root_meta =
        Meta.make ~owner
          ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List; Access_mode.Read; Access_mode.Write ] ])
          bottom
      in
      let ns = Namespace.create ~root_meta () in
      let resolver = Resolver.create monitor ns in
      let leaves = Gen.populate_tree ns ~owner ~klass:bottom ~depth ~fanout ~leaf:(fun _ -> 0) in
      let rng = Prng.create ~seed:99 in
      let leaf_array = Array.of_list leaves in
      let lookup =
        Timing.ns_per_op (fun () ->
            ignore
              (Resolver.resolve resolver ~subject ~mode:Access_mode.Read
                 (Prng.choose rng leaf_array)))
      in
      let counter = ref 0 in
      let meta () =
        Meta.make ~owner
          ~acl:(Acl.of_entries [ Acl.allow Acl.Everyone [ Access_mode.List ] ])
          bottom
      in
      let insert =
        Timing.ns_per_op ~batch:200 ~batches:5 (fun () ->
            incr counter;
            ignore
              (Resolver.create_leaf resolver ~subject
                 (Path.of_string (Printf.sprintf "/new%d" !counter))
                 ~meta:(meta ()) 0))
      in
      Format.printf "%-10d %-10d %a %a@." (Namespace.size ns) depth Timing.pp_ns lookup
        Timing.pp_ns insert)
    [ 2, 4; 3, 6; 3, 12; 4, 10 ];
  Format.printf
    "expected shape: lookup cost tracks depth, not population (hash-table@.";
  Format.printf "directories); insertion is flat — the single tree scales@."
