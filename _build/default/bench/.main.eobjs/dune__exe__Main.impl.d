bench/main.ml: Ablations Array Bech Figures Format List String Sys Tables
