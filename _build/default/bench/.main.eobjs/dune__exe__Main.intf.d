bench/main.mli:
