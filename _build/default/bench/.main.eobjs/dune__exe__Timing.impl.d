bench/timing.ml: Format Int64 List Monotonic_clock
