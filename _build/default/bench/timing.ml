(* Lightweight timing for the figure sweeps: median ns/op over several
   batches on the monotonic clock.  The bechamel suite (bech.ml) gives
   statistically careful numbers for the headline microbenchmarks; the
   sweeps here favour being cheap enough to run at many parameter
   points. *)

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let ns_per_op ?(warmup = 100) ?(batch = 1_000) ?(batches = 9) f =
  for _ = 1 to warmup do
    f ()
  done;
  let sample () =
    let start = now_ns () in
    for _ = 1 to batch do
      f ()
    done;
    (now_ns () -. start) /. float_of_int batch
  in
  let samples = List.init batches (fun _ -> sample ()) in
  let sorted = List.sort compare samples in
  List.nth sorted (batches / 2)

let pp_ns ppf ns =
  if ns < 1_000.0 then Format.fprintf ppf "%7.1f ns" ns
  else if ns < 1_000_000.0 then Format.fprintf ppf "%7.2f us" (ns /. 1_000.0)
  else Format.fprintf ppf "%7.2f ms" (ns /. 1_000_000.0)
