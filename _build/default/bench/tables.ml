(* The table experiments T1-T4 (see DESIGN.md and EXPERIMENTS.md). *)

open Exsec_core
open Exsec_extsys
open Exsec_baselines
open Exsec_workload

let header title =
  Format.printf "@.=== %s ===@." title

(* {1 T1: the paper's worked applet example (section 2.2)} *)

let t1 () =
  header "T1  Applet file-sharing matrix (paper section 2.2)";
  let scenario = Scenario.build () in
  Format.printf "%-9s" "subject";
  List.iter (Format.printf " %-13s") Scenario.files;
  Format.printf "@.";
  let mismatches = ref 0 in
  List.iter
    (fun (subject_name, _) ->
      Format.printf "%-9s" subject_name;
      List.iter
        (fun file ->
          let expected = Scenario.expected_read ~subject_name ~file in
          let measured = Scenario.measured_read scenario ~subject_name ~file in
          if expected <> measured then incr mismatches;
          Format.printf " %-13s"
            (match measured, expected with
            | true, true -> "read"
            | false, false -> "DENIED"
            | true, false -> "read (!!)"
            | false, true -> "DENIED (!!)"))
        Scenario.files;
      Format.printf "@.")
    (Scenario.subjects scenario);
  Format.printf "paper-text matrix: %s (%d mismatches)@."
    (if !mismatches = 0 then "REPRODUCED" else "NOT reproduced")
    !mismatches

(* {1 T2: ThreadMurder containment (section 1.2)} *)

let immortal () = Thread.Runnable

let murder kernel ~subject =
  let visible =
    match
      Resolver.list_dir (Kernel.resolver kernel) ~subject (Path.of_string "/threads")
    with
    | Ok names -> names
    | Error _ -> []
  in
  List.fold_left
    (fun killed name ->
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | None -> killed
      | Some id -> (
        match Kernel.kill kernel ~subject ~victim:id with
        | Ok () -> killed + 1
        | Error _ -> killed))
    0 visible

let boot_applets () =
  let db = Principal.Db.create () in
  let admin = Principal.individual "admin" in
  List.iter
    (fun name -> Principal.Db.add_individual db (Principal.individual name))
    [ "admin"; "dept1"; "dept2"; "murderer" ];
  let hierarchy = Level.hierarchy [ "local"; "organization"; "others" ] in
  let universe = Category.universe [ "d1"; "d2" ] in
  let kernel = Kernel.boot ~db ~admin ~hierarchy ~universe () in
  let cls level cats =
    Security_class.make (Level.of_name_exn hierarchy level) (Category.of_names universe cats)
  in
  kernel, cls

let run_murder ~sandboxed =
  let kernel, cls = boot_applets () in
  let subject_of name cats =
    Subject.make (Principal.individual name)
      (cls "organization" (if sandboxed then [ "d1" ] else cats))
  in
  let spawn name owner cats =
    let subject = subject_of owner cats in
    match Kernel.spawn kernel ~subject ~name ~body:immortal with
    | Ok thread ->
      if sandboxed then Meta.set_acl_raw (Thread.meta thread) (Acl.of_entries [ Acl.allow_all Acl.Everyone ]);
      thread
    | Error e -> failwith (Service.error_to_string e)
  in
  let v1 = spawn "victim-d1" "dept1" [ "d1" ] in
  let v2 = spawn "victim-d2" "dept2" [ "d2" ] in
  let murderer = subject_of "murderer" [ "d1" ] in
  let own =
    match Kernel.spawn kernel ~subject:murderer ~name:"murderer" ~body:immortal with
    | Ok thread -> thread
    | Error e -> failwith (Service.error_to_string e)
  in
  let v3 = spawn "late-victim" "dept1" [ "d1" ] in
  let killed = murder kernel ~subject:murderer in
  killed, [ v1; v2; v3; own ]

let t2 () =
  header "T2  ThreadMurder containment (paper section 1.2)";
  Format.printf "%-28s %-16s %-18s@." "model" "threads killed" "victims surviving";
  let report label (killed, threads) =
    let victims = List.filteri (fun i _ -> i < 3) threads in
    let surviving = List.length (List.filter Thread.is_alive victims) in
    Format.printf "%-28s %-16d %d/3@." label killed surviving
  in
  report "java-sandbox (flat)" (run_murder ~sandboxed:true);
  report "this-paper (classes+ACLs)" (run_murder ~sandboxed:false);
  Format.printf
    "expected: the flat sandbox loses every applet (incl. one loaded later);@.";
  Format.printf "the paper's model loses only the murderer's own thread.@."

(* {1 T3: policy expressiveness across protection models (sections 1.2, 2)} *)

let models : (module Model.MODEL) list =
  [
    (module Unix_perms);
    (module Afs_acl);
    (module Nt_acl);
    (module Java_sandbox);
    (module Spin_domains);
    (module Vino_priv);
    (module Inferno_auth);
    (module Ours);
  ]

let t3 () =
  header "T3  Policy expressiveness (paper sections 1.2 and 2)";
  Format.printf "%-4s %-42s" "req" "requirement";
  List.iter (fun (module M : Model.MODEL) -> Format.printf " %-12s" M.name) models;
  Format.printf "@.";
  List.iter
    (fun (r : World.requirement) ->
      Format.printf "%-4s %-42s" r.World.r_id
        (if String.length r.World.r_title > 42 then String.sub r.World.r_title 0 42
         else r.World.r_title);
      List.iter
        (fun m -> Format.printf " %-12s" (Model.outcome_symbol (Model.evaluate m r)))
        models;
      Format.printf "@.")
    Suite.all;
  let enforced m =
    List.length (List.filter (fun r -> Model.evaluate m r = Model.Enforced) Suite.all)
  in
  Format.printf "%-4s %-42s" "" "TOTAL enforced (of 12)";
  List.iter (fun m -> Format.printf " %-12d" (enforced m)) models;
  Format.printf "@."

(* {1 T4: three prongs vs one central facility (section 1.2)} *)

let t4 () =
  header "T4  Enforcement-structure fault injection (paper section 1.2)";
  Format.printf "Per single faulty prong, the attack classes admitted:@.";
  List.iter
    (fun prong ->
      let name =
        match prong with
        | Java_sandbox.Verifier -> "verifier"
        | Java_sandbox.Class_loader -> "class loader"
        | Java_sandbox.Security_manager -> "security manager"
      in
      let admitted =
        List.filter (Java_sandbox.breached ~faulty:[ prong ]) Java_sandbox.attacks
      in
      Format.printf "  %-18s %d/%d: %s@." name (List.length admitted)
        (List.length Java_sandbox.attacks)
        (String.concat "; " (List.map (fun a -> a.Java_sandbox.a_name) admitted)))
    Java_sandbox.prongs;
  Format.printf
    "@.Monte-Carlo breach probability vs per-component bug probability p@.";
  Format.printf "(10000 trials; a breach is any attack class left open)@.";
  Format.printf "%-6s %-22s %-22s %-10s@." "p" "three prongs (measured)"
    "central monitor (meas.)" "analytic";
  let rng = Prng.create ~seed:1997 in
  let trials = 10_000 in
  List.iter
    (fun p ->
      let three_breaches = ref 0 in
      let central_breaches = ref 0 in
      for _ = 1 to trials do
        let faulty = List.filter (fun _ -> Prng.float rng < p) Java_sandbox.prongs in
        if Java_sandbox.breach_fraction ~faulty > 0.0 then incr three_breaches;
        if Prng.float rng < p then incr central_breaches
      done;
      let analytic = 1.0 -. ((1.0 -. p) ** 3.0) in
      Format.printf "%-6.2f %-22.3f %-22.3f 1-(1-p)^3 = %.3f vs p = %.2f@." p
        (float_of_int !three_breaches /. float_of_int trials)
        (float_of_int !central_breaches /. float_of_int trials)
        analytic p)
    [ 0.05; 0.10; 0.20; 0.30 ];
  Format.printf
    "expected shape: the three-prong design is strictly more exposed for every p@."
